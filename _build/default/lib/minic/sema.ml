(** Semantic analysis: scope resolution, struct layout, pointer-arithmetic
    scaling, and frame allocation. Produces the typed AST consumed by
    {!Codegen}.

    The analysis is deliberately permissive about C's weak typing (ints and
    pointers mix freely through casts) but strict about what the code
    generator cannot express (struct-by-value, unknown identifiers). *)

open Ast

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------------ *)
(* Typed AST                                                           *)
(* ------------------------------------------------------------------ *)

type var_loc =
  | Loc_frame of int   (** FP-relative byte offset *)
  | Loc_global of string
  | Loc_func of string (** a function used as a value *)

type texpr = { ty : ty; node : tnode }

and tnode =
  | Tnum of int
  | Tstr of string  (** data symbol of the string literal *)
  | Tload of tlval
  | Taddr of tlval
  | Tfun_addr of string
  | Tun of unop * texpr
  | Tbin of binop * texpr * texpr
  | Tassign of tlval * texpr
  | Tcall of string * texpr list
  | Tcall_ptr of texpr * texpr list
  | Tcond of texpr * texpr * texpr

and tlval =
  | Lvar of var_loc * ty   (** directly addressable scalar *)
  | Lmem of texpr * ty     (** computed address, pointee type *)

type tstmt =
  | TSexpr of texpr
  | TSif of texpr * tstmt list * tstmt list
  | TSwhile of texpr * tstmt list
  | TSfor of tstmt option * texpr option * texpr option * tstmt list
  | TSreturn of texpr option
  | TSbreak
  | TScontinue
  | TSblock of tstmt list

type tfunc = {
  tf_name : string;
  tf_params : (string * ty) list;
  tf_frame_size : int;  (** bytes reserved below FP for locals *)
  tf_body : tstmt list;
}

(** Global data item: symbol, byte size, optional initial bytes. *)
type tdata = { d_sym : string; d_size : int; d_init : string option }

type tprog = {
  tp_funcs : tfunc list;
  tp_data : tdata list;
}

(* ------------------------------------------------------------------ *)
(* Struct layout                                                       *)
(* ------------------------------------------------------------------ *)

type struct_layout = {
  sl_size : int;
  sl_fields : (string * int * ty) list;  (** name, offset, type *)
}

type env = {
  structs : (string, struct_layout) Hashtbl.t;
  funcs : (string, ty * ty list) Hashtbl.t;  (** return type, param types *)
  globals : (string, ty) Hashtbl.t;
  mutable strings : (string * string) list;  (** symbol, content *)
  mutable string_count : int;
}

let rec size_of env = function
  | Tvoid -> err "sizeof(void)"
  | Tint | Tptr _ | Tfunptr -> 4
  | Tchar -> 1
  | Tarray (t, n) -> size_of env t * n
  | Tstruct s -> (
    match Hashtbl.find_opt env.structs s with
    | Some l -> l.sl_size
    | None -> err "unknown struct %s" s)

let align_of env = function
  | Tchar -> 1
  | Tarray (Tchar, _) -> 1
  | _ -> ignore env; 4

let layout_struct env (sd : struct_def) =
  let off = ref 0 in
  let fields =
    List.map
      (fun (ty, name) ->
        let a = align_of env ty in
        off := (!off + a - 1) / a * a;
        let o = !off in
        off := !off + size_of env ty;
        (name, o, ty))
      sd.s_fields
  in
  { sl_size = (!off + 3) / 4 * 4; sl_fields = fields }

let field_of env sname fname =
  match Hashtbl.find_opt env.structs sname with
  | None -> err "unknown struct %s" sname
  | Some l -> (
    match List.find_opt (fun (n, _, _) -> n = fname) l.sl_fields with
    | Some (_, off, ty) -> (off, ty)
    | None -> err "struct %s has no field %s" sname fname)

(* ------------------------------------------------------------------ *)
(* Intrinsics (syscall wrappers recognized by name)                    *)
(* ------------------------------------------------------------------ *)

let intrinsics =
  [
    ("_exit", 1); ("_recv", 2); ("_send", 2); ("_sys_malloc", 1);
    ("_sys_free", 1); ("_log", 1); ("_exec", 1); ("_random", 0); ("_time", 0);
  ]

let is_intrinsic name = List.mem_assoc name intrinsics

(* ------------------------------------------------------------------ *)
(* Expression checking                                                 *)
(* ------------------------------------------------------------------ *)

type scope = {
  mutable vars : (string * (var_loc * ty)) list list;  (** scope stack *)
  mutable frame_bottom : int;  (** most negative FP offset used so far *)
}

let push_scope sc = sc.vars <- [] :: sc.vars
let pop_scope sc = sc.vars <- List.tl sc.vars

let lookup_var sc name =
  let rec go = function
    | [] -> None
    | s :: rest -> (
      match List.assoc_opt name s with Some v -> Some v | None -> go rest)
  in
  go sc.vars

let declare_local env sc ty name =
  let size = (size_of env ty + 3) / 4 * 4 in
  sc.frame_bottom <- sc.frame_bottom - size;
  let loc = Loc_frame sc.frame_bottom in
  (match sc.vars with
  | top :: rest -> sc.vars <- ((name, (loc, ty)) :: top) :: rest
  | [] -> assert false);
  loc

let is_scalar = function
  | Tint | Tchar | Tptr _ | Tfunptr -> true
  | Tvoid | Tarray _ | Tstruct _ -> false

(* The value type an lvalue yields when loaded. *)
let lval_ty = function
  | Lvar (_, t) -> t
  | Lmem (_, t) -> t

let mk ty node = { ty; node }

let int_e n = mk Tint (Tnum n)

let string_symbol env s =
  (* Deduplicate identical literals. *)
  match List.find_opt (fun (_, c) -> c = s) env.strings with
  | Some (sym, _) -> sym
  | None ->
    let sym = Printf.sprintf "__str_%d" env.string_count in
    env.string_count <- env.string_count + 1;
    env.strings <- (sym, s) :: env.strings;
    sym

(* Scale an index expression for pointer arithmetic on element type [t]. *)
let scaled env idx t =
  let s = size_of env t in
  if s = 1 then idx else mk Tint (Tbin (Mul, idx, int_e s))

let rec check_expr env sc (e : expr) : texpr =
  match e with
  | Num n -> int_e n
  | Chr c -> mk Tchar (Tnum (Char.code c))
  | Str s -> mk (Tptr Tchar) (Tstr (string_symbol env s))
  | Var name -> (
    match lookup_var sc name with
    | Some (loc, (Tarray (t, _) as aty)) ->
      (* Arrays decay to a pointer to their first element. *)
      mk (Tptr t) (Taddr (Lvar (loc, aty)))
    | Some (loc, (Tstruct _ as sty)) -> mk (Tptr sty) (Taddr (Lvar (loc, sty)))
    | Some (loc, ty) -> mk ty (Tload (Lvar (loc, ty)))
    | None -> (
      match Hashtbl.find_opt env.globals name with
      | Some (Tarray (t, _) as aty) ->
        mk (Tptr t) (Taddr (Lvar (Loc_global name, aty)))
      | Some ty -> mk ty (Tload (Lvar (Loc_global name, ty)))
      | None ->
        if Hashtbl.mem env.funcs name then mk Tfunptr (Tfun_addr name)
        else err "unknown identifier %s" name))
  | Un (Addr_of, inner) ->
    let lv = check_lval env sc inner in
    mk (Tptr (lval_ty lv)) (Taddr lv)
  | Un (Deref, inner) ->
    let p = check_expr env sc inner in
    let pointee =
      match p.ty with
      | Tptr t -> t
      | Tint -> Tint  (* int used as pointer: common in crashy C *)
      | t -> err "cannot dereference %s" (ty_to_string t)
    in
    if is_scalar pointee then mk pointee (Tload (Lmem (p, pointee)))
    else mk (Tptr pointee) p.node |> fun e -> { e with ty = Tptr pointee }
  | Un (op, inner) ->
    let t = check_expr env sc inner in
    mk Tint (Tun (op, t))
  | Bin ((Add | Sub) as op, e1, e2) -> (
    let t1 = check_expr env sc e1 in
    let t2 = check_expr env sc e2 in
    (* Pointer arithmetic scaling. *)
    match (t1.ty, t2.ty, op) with
    | Tptr t, (Tint | Tchar), _ -> mk t1.ty (Tbin (op, t1, scaled env t2 t))
    | (Tint | Tchar), Tptr t, Add -> mk t2.ty (Tbin (Add, t2, scaled env t1 t))
    | Tptr ta, Tptr _, Sub ->
      let diff = mk Tint (Tbin (Sub, t1, t2)) in
      let s = size_of env ta in
      if s = 1 then diff else mk Tint (Tbin (Div, diff, int_e s))
    | _ -> mk Tint (Tbin (op, t1, t2)))
  | Bin (op, e1, e2) ->
    let t1 = check_expr env sc e1 in
    let t2 = check_expr env sc e2 in
    mk Tint (Tbin (op, t1, t2))
  | Assign (lhs, rhs) ->
    let lv = check_lval env sc lhs in
    let rv = check_expr env sc rhs in
    if not (is_scalar (lval_ty lv)) then err "cannot assign aggregate";
    mk (lval_ty lv) (Tassign (lv, rv))
  | Call (name, args) ->
    let targs = List.map (check_expr env sc) args in
    if is_intrinsic name then begin
      let arity = List.assoc name intrinsics in
      if List.length targs <> arity then
        err "%s expects %d arguments" name arity;
      mk Tint (Tcall (name, targs))
    end
    else begin
      match Hashtbl.find_opt env.funcs name with
      | Some (ret, ptys) ->
        if List.length ptys <> List.length targs then
          err "%s expects %d arguments, got %d" name (List.length ptys)
            (List.length targs);
        mk ret (Tcall (name, targs))
      | None -> (
        (* Calling through a function-pointer variable. *)
        match lookup_var sc name with
        | Some (loc, (Tfunptr | Tptr _ | Tint)) ->
          mk Tint
            (Tcall_ptr (mk Tfunptr (Tload (Lvar (loc, Tfunptr))), targs))
        | _ ->
          if Hashtbl.mem env.globals name then
            mk Tint
              (Tcall_ptr
                 (mk Tfunptr (Tload (Lvar (Loc_global name, Tfunptr))), targs))
          else err "unknown function %s" name)
    end
  | Call_ptr (f, args) ->
    let tf = check_expr env sc f in
    let targs = List.map (check_expr env sc) args in
    mk Tint (Tcall_ptr (tf, targs))
  | Index (base, idx) ->
    let lv = check_index env sc base idx in
    let t = lval_ty lv in
    if is_scalar t then mk t (Tload lv)
    else
      (* Indexing into an array of aggregates yields an address. *)
      let addr = match lv with Lmem (a, _) -> a | Lvar _ -> assert false in
      mk (Tptr t) addr.node |> fun e -> { e with ty = Tptr t }
  | Field (base, fname) ->
    let lv = check_field env sc base fname in
    let t = lval_ty lv in
    if is_scalar t then mk t (Tload lv)
    else err "aggregate field access must be an lvalue context"
  | Arrow (base, fname) ->
    let lv = check_arrow env sc base fname in
    let t = lval_ty lv in
    if is_scalar t then mk t (Tload lv)
    else err "aggregate field access must be an lvalue context"
  | Cast (ty, e) ->
    let t = check_expr env sc e in
    { t with ty }
  | Sizeof ty -> int_e (size_of env ty)
  | Cond (c, a, b) ->
    let tc = check_expr env sc c in
    let ta = check_expr env sc a in
    let tb = check_expr env sc b in
    mk ta.ty (Tcond (tc, ta, tb))

and check_lval env sc (e : expr) : tlval =
  match e with
  | Var name -> (
    match lookup_var sc name with
    | Some (loc, ty) -> Lvar (loc, ty)
    | None -> (
      match Hashtbl.find_opt env.globals name with
      | Some ty -> Lvar (Loc_global name, ty)
      | None -> err "unknown identifier %s" name))
  | Un (Deref, inner) ->
    let p = check_expr env sc inner in
    let pointee =
      match p.ty with Tptr t -> t | Tint -> Tint | t -> err "cannot dereference %s" (ty_to_string t)
    in
    Lmem (p, pointee)
  | Index (base, idx) -> check_index env sc base idx
  | Field (base, fname) -> check_field env sc base fname
  | Arrow (base, fname) -> check_arrow env sc base fname
  | Cast (ty, inner) -> (
    match check_lval env sc inner with
    | Lvar (loc, _) -> Lvar (loc, ty)
    | Lmem (a, _) -> Lmem (a, ty))
  | _ -> err "expression is not an lvalue"

and check_index env sc base idx : tlval =
  let tb = check_expr env sc base in
  let ti = check_expr env sc idx in
  let elem =
    match tb.ty with
    | Tptr t -> t
    | Tint -> Tchar  (* raw int indexed: treat as byte pointer *)
    | t -> err "cannot index %s" (ty_to_string t)
  in
  let addr = mk (Tptr elem) (Tbin (Add, tb, scaled env ti elem)) in
  Lmem (addr, elem)

and check_field env sc base fname : tlval =
  let lv = check_lval env sc base in
  let sname =
    match lval_ty lv with
    | Tstruct s -> s
    | t -> err "field access on non-struct %s" (ty_to_string t)
  in
  let off, fty = field_of env sname fname in
  let base_addr = mk (Tptr (Tstruct sname)) (Taddr lv) in
  let addr = mk (Tptr fty) (Tbin (Add, base_addr, int_e off)) in
  Lmem (addr, fty)

and check_arrow env sc base fname : tlval =
  let tb = check_expr env sc base in
  let sname =
    match tb.ty with
    | Tptr (Tstruct s) | Tstruct s -> s
    | t -> err "arrow on non-struct-pointer %s" (ty_to_string t)
  in
  let off, fty = field_of env sname fname in
  let addr = mk (Tptr fty) (Tbin (Add, tb, int_e off)) in
  Lmem (addr, fty)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec check_stmt env sc (s : stmt) : tstmt =
  match s with
  | Sexpr e -> TSexpr (check_expr env sc e)
  | Sdecl (ty, name, init) ->
    let loc = declare_local env sc ty name in
    (match init with
    | None -> TSblock []
    | Some e ->
      let rv = check_expr env sc e in
      if not (is_scalar ty) then err "cannot initialize aggregate %s" name;
      TSexpr (mk ty (Tassign (Lvar (loc, ty), rv))))
  | Sif (c, t, e) ->
    let tc = check_expr env sc c in
    TSif (tc, check_block env sc t, check_block env sc e)
  | Swhile (c, body) ->
    TSwhile (check_expr env sc c, check_block env sc body)
  | Sfor (init, cond, step, body) ->
    push_scope sc;
    let ti = Option.map (check_stmt env sc) init in
    let tc = Option.map (check_expr env sc) cond in
    let ts = Option.map (check_expr env sc) step in
    let tb = check_block env sc body in
    pop_scope sc;
    TSfor (ti, tc, ts, tb)
  | Sreturn e -> TSreturn (Option.map (check_expr env sc) e)
  | Sbreak -> TSbreak
  | Scontinue -> TScontinue
  | Sblock b -> TSblock (check_block env sc b)

and check_block env sc stmts =
  push_scope sc;
  let r = List.map (check_stmt env sc) stmts in
  pop_scope sc;
  r

(* ------------------------------------------------------------------ *)
(* Program                                                             *)
(* ------------------------------------------------------------------ *)

let check_func env (f : func) : tfunc =
  let sc = { vars = [ [] ]; frame_bottom = 0 } in
  (* Parameters live above the saved FP: FP+8, FP+12, ... *)
  List.iteri
    (fun i (ty, name) ->
      if not (is_scalar ty) then err "%s: aggregate parameter %s" f.f_name name;
      match sc.vars with
      | top :: rest ->
        sc.vars <- ((name, (Loc_frame (8 + (4 * i)), ty)) :: top) :: rest
      | [] -> assert false)
    f.f_params;
  let body = check_block env sc f.f_body in
  {
    tf_name = f.f_name;
    tf_params = List.map (fun (t, n) -> (n, t)) f.f_params;
    tf_frame_size = -sc.frame_bottom;
    tf_body = body;
  }

(** Analyze a whole program. [extern_funcs] declares functions defined in
    another unit (e.g. app code calling libc), as (name, return, params). *)
let check ?(extern_funcs = []) (prog : program) : tprog =
  let env =
    {
      structs = Hashtbl.create 8;
      funcs = Hashtbl.create 32;
      globals = Hashtbl.create 16;
      strings = [];
      string_count = 0;
    }
  in
  List.iter
    (fun (name, ret, ptys) -> Hashtbl.replace env.funcs name (ret, ptys))
    extern_funcs;
  (* First pass: collect structs, function signatures, global types. *)
  List.iter
    (function
      | Gstruct sd -> Hashtbl.replace env.structs sd.s_name (layout_struct env sd)
      | Gfunc f ->
        Hashtbl.replace env.funcs f.f_name (f.f_ret, List.map fst f.f_params)
      | Gvar (ty, name, _) -> Hashtbl.replace env.globals name ty)
    prog;
  (* Second pass: check function bodies, collect data items. *)
  let funcs = ref [] in
  let data = ref [] in
  List.iter
    (function
      | Gstruct _ -> ()
      | Gfunc f -> funcs := check_func env f :: !funcs
      | Gvar (ty, name, init) ->
        let size = (size_of env ty + 3) / 4 * 4 in
        let init_bytes =
          let word n =
            let b = Bytes.create 4 in
            Bytes.set_int32_le b 0 (Int32.of_int n);
            Some (Bytes.to_string b)
          in
          match init with
          | None -> None
          | Some (Num n) -> word n
          | Some (Un (Neg, Num n)) -> word (-n)
          | Some (Chr c) -> word (Char.code c)
          | Some _ -> err "global %s: only integer initializers supported" name
        in
        data := { d_sym = name; d_size = size; d_init = init_bytes } :: !data)
    prog;
  let string_data =
    List.rev_map
      (fun (sym, content) ->
        { d_sym = sym; d_size = String.length content + 1;
          d_init = Some (content ^ "\000") })
      env.strings
  in
  { tp_funcs = List.rev !funcs; tp_data = List.rev !data @ string_data }
