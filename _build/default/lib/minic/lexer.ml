(** Hand-written lexer for MiniC. *)

type token =
  | INT_KW | CHAR_KW | VOID_KW | STRUCT_KW
  | IF | ELSE | WHILE | FOR | RETURN | BREAK | CONTINUE | SIZEOF
  | IDENT of string
  | NUM of int
  | STRING of string
  | CHARLIT of char
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | TILDE | SHL_T | SHR_T
  | BANG | ANDAND | OROR
  | ASSIGN | EQ_T | NE_T | LT_T | LE_T | GT_T | GE_T
  | DOT | ARROW_T | QUESTION | COLON
  | EOF

exception Lex_error of string * int  (** message, line *)

let keyword = function
  | "int" -> Some INT_KW
  | "char" -> Some CHAR_KW
  | "void" -> Some VOID_KW
  | "struct" -> Some STRUCT_KW
  | "if" -> Some IF
  | "else" -> Some ELSE
  | "while" -> Some WHILE
  | "for" -> Some FOR
  | "return" -> Some RETURN
  | "break" -> Some BREAK
  | "continue" -> Some CONTINUE
  | "sizeof" -> Some SIZEOF
  | _ -> None

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || is_digit c

(** Tokenize [src]; returns tokens paired with their line numbers, ending
    with [EOF]. Supports line ([//]) and block comments, decimal and hex
    integers, and the usual C escapes in string/char literals. *)
let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let emit t = toks := (t, !line) :: !toks in
  let rec escape i =
    (* Returns (char, next index); i points after the backslash. *)
    if i >= n then raise (Lex_error ("unterminated escape", !line))
    else
      match src.[i] with
      | 'n' -> ('\n', i + 1)
      | 't' -> ('\t', i + 1)
      | 'r' -> ('\r', i + 1)
      | '0' -> ('\000', i + 1)
      | '\\' -> ('\\', i + 1)
      | '\'' -> ('\'', i + 1)
      | '"' -> ('"', i + 1)
      | 'x' ->
        if i + 2 < n && is_hex src.[i + 1] && is_hex src.[i + 2] then
          (Char.chr (int_of_string (Printf.sprintf "0x%c%c" src.[i + 1] src.[i + 2])),
           i + 3)
        else raise (Lex_error ("bad hex escape", !line))
      | c -> (c, i + 1)
  and go i =
    if i >= n then emit EOF
    else
      let c = src.[i] in
      match c with
      | ' ' | '\t' | '\r' -> go (i + 1)
      | '\n' ->
        incr line;
        go (i + 1)
      | '/' when i + 1 < n && src.[i + 1] = '/' ->
        let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
        go (skip (i + 2))
      | '/' when i + 1 < n && src.[i + 1] = '*' ->
        let rec skip j =
          if j + 1 >= n then raise (Lex_error ("unterminated comment", !line))
          else if src.[j] = '*' && src.[j + 1] = '/' then j + 2
          else begin
            if src.[j] = '\n' then incr line;
            skip (j + 1)
          end
        in
        go (skip (i + 2))
      | '0' when i + 1 < n && (src.[i + 1] = 'x' || src.[i + 1] = 'X') ->
        let rec num j = if j < n && is_hex src.[j] then num (j + 1) else j in
        let j = num (i + 2) in
        emit (NUM (int_of_string (String.sub src i (j - i))));
        go j
      | c when is_digit c ->
        let rec num j = if j < n && is_digit src.[j] then num (j + 1) else j in
        let j = num i in
        emit (NUM (int_of_string (String.sub src i (j - i))));
        go j
      | c when is_ident_start c ->
        let rec id j = if j < n && is_ident src.[j] then id (j + 1) else j in
        let j = id i in
        let s = String.sub src i (j - i) in
        emit (match keyword s with Some k -> k | None -> IDENT s);
        go j
      | '"' ->
        let buf = Buffer.create 16 in
        let rec str j =
          if j >= n then raise (Lex_error ("unterminated string", !line))
          else if src.[j] = '"' then j + 1
          else if src.[j] = '\\' then begin
            let c, j' = escape (j + 1) in
            Buffer.add_char buf c;
            str j'
          end
          else begin
            if src.[j] = '\n' then incr line;
            Buffer.add_char buf src.[j];
            str (j + 1)
          end
        in
        let j = str (i + 1) in
        emit (STRING (Buffer.contents buf));
        go j
      | '\'' ->
        let c, j =
          if i + 1 < n && src.[i + 1] = '\\' then escape (i + 2)
          else if i + 1 < n then (src.[i + 1], i + 2)
          else raise (Lex_error ("unterminated char literal", !line))
        in
        if j < n && src.[j] = '\'' then begin
          emit (CHARLIT c);
          go (j + 1)
        end
        else raise (Lex_error ("unterminated char literal", !line))
      | '(' -> emit LPAREN; go (i + 1)
      | ')' -> emit RPAREN; go (i + 1)
      | '{' -> emit LBRACE; go (i + 1)
      | '}' -> emit RBRACE; go (i + 1)
      | '[' -> emit LBRACKET; go (i + 1)
      | ']' -> emit RBRACKET; go (i + 1)
      | ';' -> emit SEMI; go (i + 1)
      | ',' -> emit COMMA; go (i + 1)
      | '+' -> emit PLUS; go (i + 1)
      | '-' when i + 1 < n && src.[i + 1] = '>' -> emit ARROW_T; go (i + 2)
      | '-' -> emit MINUS; go (i + 1)
      | '*' -> emit STAR; go (i + 1)
      | '/' -> emit SLASH; go (i + 1)
      | '%' -> emit PERCENT; go (i + 1)
      | '&' when i + 1 < n && src.[i + 1] = '&' -> emit ANDAND; go (i + 2)
      | '&' -> emit AMP; go (i + 1)
      | '|' when i + 1 < n && src.[i + 1] = '|' -> emit OROR; go (i + 2)
      | '|' -> emit PIPE; go (i + 1)
      | '^' -> emit CARET; go (i + 1)
      | '~' -> emit TILDE; go (i + 1)
      | '!' when i + 1 < n && src.[i + 1] = '=' -> emit NE_T; go (i + 2)
      | '!' -> emit BANG; go (i + 1)
      | '=' when i + 1 < n && src.[i + 1] = '=' -> emit EQ_T; go (i + 2)
      | '=' -> emit ASSIGN; go (i + 1)
      | '<' when i + 1 < n && src.[i + 1] = '<' -> emit SHL_T; go (i + 2)
      | '<' when i + 1 < n && src.[i + 1] = '=' -> emit LE_T; go (i + 2)
      | '<' -> emit LT_T; go (i + 1)
      | '>' when i + 1 < n && src.[i + 1] = '>' -> emit SHR_T; go (i + 2)
      | '>' when i + 1 < n && src.[i + 1] = '=' -> emit GE_T; go (i + 2)
      | '>' -> emit GT_T; go (i + 1)
      | '.' -> emit DOT; go (i + 1)
      | '?' -> emit QUESTION; go (i + 1)
      | ':' -> emit COLON; go (i + 1)
      | c -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, !line))
  in
  go 0;
  List.rev !toks
