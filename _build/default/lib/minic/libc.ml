(** The C runtime library, written in MiniC and compiled into the
    randomized library segment of every process.

    Keeping libc as compiled VM code (rather than native helpers) matters:
    the paper's analyses attribute faults to instructions {e inside}
    library routines — "0x4f0f0907 in strcat, when called by
    ftpBuildTitleUrl" — and its VSEFs hook those very instructions. Our
    [strcat]/[strcpy] loops contain the genuine overflowing stores, and
    [free] contains the genuine double-free abort, at addresses that move
    with address-space randomization. *)

let source = {|
// ------------------------------------------------------------------
// string routines (deliberately unsafe, as in C)
// ------------------------------------------------------------------

int strlen(char *s) {
  int i = 0;
  while (s[i] != 0) { i = i + 1; }
  return i;
}

char *strcpy(char *dst, char *src) {
  int i = 0;
  while (src[i] != 0) {
    dst[i] = src[i];        // the classic overflowing store
    i = i + 1;
  }
  dst[i] = 0;
  return dst;
}

char *strcat(char *dst, char *src) {
  int i = 0;
  int j = 0;
  while (dst[i] != 0) { i = i + 1; }
  while (src[j] != 0) {
    dst[i] = src[j];        // unbounded append: CVE-2002-0068's instruction
    i = i + 1;
    j = j + 1;
  }
  dst[i] = 0;
  return dst;
}

char *strncpy(char *dst, char *src, int n) {
  int i = 0;
  while (i < n && src[i] != 0) {
    dst[i] = src[i];
    i = i + 1;
  }
  if (i < n) { dst[i] = 0; }
  return dst;
}

int strcmp(char *a, char *b) {
  int i = 0;
  while (a[i] != 0 && b[i] != 0 && a[i] == b[i]) { i = i + 1; }
  return a[i] - b[i];
}

int strncmp(char *a, char *b, int n) {
  int i = 0;
  if (n == 0) { return 0; }
  while (i < n - 1 && a[i] != 0 && b[i] != 0 && a[i] == b[i]) { i = i + 1; }
  return a[i] - b[i];
}

char *strchr(char *s, int c) {
  int i = 0;
  while (s[i] != 0) {
    if (s[i] == c) { return s + i; }
    i = i + 1;
  }
  return (char*)0;
}

char *strstr(char *hay, char *needle) {
  int i = 0;
  int nlen = strlen(needle);
  if (nlen == 0) { return hay; }
  while (hay[i] != 0) {
    if (strncmpeq(hay + i, needle, nlen)) {
      return hay + i;
    }
    i = i + 1;
  }
  return (char*)0;
}

// strncmp that treats equality over exactly n bytes as a match
int strncmpeq(char *a, char *b, int n) {
  int i = 0;
  while (i < n) {
    if (a[i] != b[i]) { return 0; }
    if (a[i] == 0) { return 0; }
    i = i + 1;
  }
  return 1;
}

char *memcpy(char *dst, char *src, int n) {
  int i = 0;
  while (i < n) {
    dst[i] = src[i];
    i = i + 1;
  }
  return dst;
}

char *memset(char *dst, int c, int n) {
  int i = 0;
  while (i < n) {
    dst[i] = (char)c;
    i = i + 1;
  }
  return dst;
}

char *strncat(char *dst, char *src, int n) {
  int i = 0;
  int j = 0;
  while (dst[i] != 0) { i = i + 1; }
  while (j < n && src[j] != 0) {
    dst[i] = src[j];
    i = i + 1;
    j = j + 1;
  }
  dst[i] = 0;
  return dst;
}

char *strrchr(char *s, int c) {
  char *found = (char*)0;
  int i = 0;
  while (s[i] != 0) {
    if (s[i] == c) { found = s + i; }
    i = i + 1;
  }
  return found;
}

int memcmp(char *a, char *b, int n) {
  int i = 0;
  while (i < n) {
    if (a[i] != b[i]) { return (a[i] & 255) - (b[i] & 255); }
    i = i + 1;
  }
  return 0;
}

char *strdup(char *s) {
  char *p = malloc(strlen(s) + 1);
  if (p != 0) { strcpy(p, s); }
  return p;
}

int tolower(int c) {
  if (c >= 'A' && c <= 'Z') { return c + 32; }
  return c;
}

int toupper(int c) {
  if (c >= 'a' && c <= 'z') { return c - 32; }
  return c;
}

int isdigit(int c) {
  if (c >= '0' && c <= '9') { return 1; }
  return 0;
}

int isalpha(int c) {
  if (c >= 'a' && c <= 'z') { return 1; }
  if (c >= 'A' && c <= 'Z') { return 1; }
  return 0;
}

int isspace(int c) {
  if (c == ' ' || c == '\t' || c == '\n' || c == '\r') { return 1; }
  return 0;
}

int atoi(char *s) {
  int v = 0;
  int i = 0;
  int sign = 1;
  if (s[0] == '-') { sign = 0 - 1; i = 1; }
  while (s[i] >= '0' && s[i] <= '9') {
    v = v * 10 + (s[i] - '0');
    i = i + 1;
  }
  return v * sign;
}

// render a signed integer into buf; returns the length written
int itoa(int v, char *buf) {
  char tmp[16];
  int i = 0;
  int j = 0;
  int neg = 0;
  if (v == 0) { buf[0] = '0'; buf[1] = 0; return 1; }
  if (v < 0) { neg = 1; v = 0 - v; }
  while (v > 0) {
    tmp[i] = (char)('0' + v % 10);
    v = v / 10;
    i = i + 1;
  }
  if (neg) { buf[j] = '-'; j = j + 1; }
  while (i > 0) {
    i = i - 1;
    buf[j] = tmp[i];
    j = j + 1;
  }
  buf[j] = 0;
  return j;
}

// ------------------------------------------------------------------
// heap: thin wrappers over the allocator syscalls, with the glibc-style
// consistency check that turns a double free into an abort inside free()
// ------------------------------------------------------------------

char *malloc(int n) {
  return (char*)_sys_malloc(n);
}

char *xcalloc(int n, int sz) {
  char *p = (char*)_sys_malloc(n * sz);
  if (p != 0) { memset(p, 0, n * sz); }
  return p;
}

void free(char *p) {
  int *h;
  if (p == 0) { return; }
  h = (int*)(p - 8);
  if (h[1] != 0x000A110C) {
    // heap metadata inconsistent (double free or overflow):
    // abort by faulting, as glibc does
    int *crash = (int*)4;
    *crash = 0x0000DEAD;
  }
  _sys_free(p);
}

// ------------------------------------------------------------------
// rfc1738-style URL escaping: each unsafe byte becomes %XX, so output
// can be up to 3x input — the expansion at the heart of CVE-2002-0068
// ------------------------------------------------------------------

int url_safe_char(int c) {
  if (c >= 'a' && c <= 'z') { return 1; }
  if (c >= 'A' && c <= 'Z') { return 1; }
  if (c >= '0' && c <= '9') { return 1; }
  if (c == '.' || c == '-' || c == '_' || c == '/') { return 1; }
  return 0;
}

int hex_digit(int v) {
  if (v < 10) { return '0' + v; }
  return 'A' + (v - 10);
}

char *rfc1738_escape_part(char *s) {
  int bufsize = strlen(s) * 3 + 1;
  char *buf = xcalloc(bufsize, 1);
  int i = 0;
  int j = 0;
  if (buf == 0) { return (char*)0; }
  while (s[i] != 0) {
    int c = s[i] & 255;
    if (url_safe_char(c)) {
      buf[j] = (char)c;
      j = j + 1;
    } else {
      buf[j] = '%';
      buf[j + 1] = (char)hex_digit((c >> 4) & 15);
      buf[j + 2] = (char)hex_digit(c & 15);
      j = j + 3;
    }
    i = i + 1;
  }
  buf[j] = 0;
  return buf;
}

// system(): the return-to-libc target every exploit aims for
int system(char *cmd) {
  _exec(cmd);
  return 0;
}
|}

open Ast

(** Signatures exported to application units (for extern linking). *)
let signatures : (string * ty * ty list) list =
  let cp = Tptr Tchar in
  [
    ("strlen", Tint, [ cp ]);
    ("strcpy", cp, [ cp; cp ]);
    ("strcat", cp, [ cp; cp ]);
    ("strncpy", cp, [ cp; cp; Tint ]);
    ("strcmp", Tint, [ cp; cp ]);
    ("strncmp", Tint, [ cp; cp; Tint ]);
    ("strncmpeq", Tint, [ cp; cp; Tint ]);
    ("strncat", cp, [ cp; cp; Tint ]);
    ("strchr", cp, [ cp; Tint ]);
    ("strrchr", cp, [ cp; Tint ]);
    ("strstr", cp, [ cp; cp ]);
    ("strdup", cp, [ cp ]);
    ("memcpy", cp, [ cp; cp; Tint ]);
    ("memset", cp, [ cp; Tint; Tint ]);
    ("memcmp", Tint, [ cp; cp; Tint ]);
    ("tolower", Tint, [ Tint ]);
    ("toupper", Tint, [ Tint ]);
    ("isdigit", Tint, [ Tint ]);
    ("isalpha", Tint, [ Tint ]);
    ("isspace", Tint, [ Tint ]);
    ("atoi", Tint, [ cp ]);
    ("itoa", Tint, [ Tint; cp ]);
    ("malloc", cp, [ Tint ]);
    ("xcalloc", cp, [ Tint; Tint ]);
    ("free", Tvoid, [ cp ]);
    ("url_safe_char", Tint, [ Tint ]);
    ("hex_digit", Tint, [ Tint ]);
    ("rfc1738_escape_part", cp, [ cp ]);
    ("system", Tint, [ cp ]);
  ]
