lib/epidemic/ode.ml: Array List
