lib/epidemic/si.ml: Array List Ode Option
