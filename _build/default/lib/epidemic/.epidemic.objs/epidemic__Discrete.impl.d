lib/epidemic/discrete.ml: Float Random
