lib/epidemic/ode.mli:
