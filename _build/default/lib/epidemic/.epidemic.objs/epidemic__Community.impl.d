lib/epidemic/community.ml: Discrete List Si
