lib/epidemic/community.mli:
