lib/epidemic/discrete.mli: Random
