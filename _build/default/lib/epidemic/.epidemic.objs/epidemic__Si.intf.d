lib/epidemic/si.mli:
