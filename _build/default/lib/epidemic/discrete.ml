(** A discrete-event stochastic outbreak simulator, cross-validating the
    ODE model: N individual hosts, random hit-list contacts, probabilistic
    proactive protection, and an antibody wave γ seconds after the first
    producer is probed. *)

type config = {
  n : int;            (** vulnerable hosts *)
  producers : int;    (** how many of them run the full Sweeper stack *)
  beta : float;       (** contacts per infected host per second *)
  rho : float;        (** probability an attempt beats the protection *)
  gamma : float;      (** community response time, seconds *)
  dt : float;         (** simulation step *)
  t_max : float;
  seed : int;
}

type outcome = {
  o_infected : int;       (** final infected count *)
  o_ratio : float;
  o_t0 : float option;    (** when the first producer was probed *)
  o_t_end : float;        (** when the outbreak stopped changing *)
  o_attempts : int;       (** total infection attempts made *)
}

(* Poisson(λ) via Knuth's product method — only used for small λ. *)
let poisson rng lambda =
  let limit = exp (-.lambda) in
  let rec go k prod =
    let prod = prod *. Random.State.float rng 1. in
    if prod <= limit then k else go (k + 1) prod
  in
  go 0 1.

(* Bernoulli(p) repeated [n] times — exact for small n, Poisson
   approximation when np is small (the early-outbreak regime, where a
   normal approximation would distort the tail), normal approximation for
   the large counts of a full-blown outbreak. *)
let binomial rng n p =
  if n <= 0 || p <= 0. then 0
  else if p >= 1. then n
  else if n < 64 then begin
    let k = ref 0 in
    for _ = 1 to n do
      if Random.State.float rng 1. < p then incr k
    done;
    !k
  end
  else
    let mean = float_of_int n *. p in
    if mean < 30. then min n (poisson rng mean)
    else begin
      let sd = sqrt (float_of_int n *. p *. (1. -. p)) in
      (* Box–Muller *)
      let u1 = Random.State.float rng 1. +. 1e-12 in
      let u2 = Random.State.float rng 1. in
      let z = sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2) in
      let k = int_of_float (Float.round (mean +. (sd *. z))) in
      max 0 (min n k)
    end

(** Run one stochastic outbreak. *)
let run (c : config) : outcome =
  let rng = Random.State.make [| c.seed; 0xE71D |] in
  let n_f = float_of_int c.n in
  let infected = ref 1 in
  let immune = ref 0 in
  let producer_probed = ref false in
  let t0 = ref None in
  let attempts = ref 0 in
  let t = ref 0. in
  let finished = ref false in
  while (not !finished) && !t < c.t_max do
    (* Antibody wave: γ after the first producer probe, everyone not yet
       infected becomes immune. *)
    (match !t0 with
    | Some tz when !t >= tz +. c.gamma && !immune = 0 ->
      immune := c.n - !infected
    | _ -> ());
    if !immune > 0 || !infected >= c.n then finished := true
    else begin
      (* Each infected host attempts β contacts per second; each potential
         contact of this step happens with probability dt. *)
      let contacts =
        binomial rng
          (int_of_float (Float.round (float_of_int !infected *. c.beta)))
          c.dt
      in
      attempts := !attempts + contacts;
      (* A contact probes a producer with probability producers/N. *)
      if (not !producer_probed) && contacts > 0 then begin
        let p_producer = float_of_int c.producers /. n_f in
        if binomial rng contacts p_producer > 0 then begin
          producer_probed := true;
          t0 := Some !t
        end
      end;
      (* A contact infects if it lands on a susceptible host and beats the
         protection. *)
      let susceptible = c.n - !infected in
      let p_infect = float_of_int susceptible /. n_f *. c.rho in
      let new_infections = binomial rng contacts p_infect in
      infected := min c.n (!infected + new_infections);
      t := !t +. c.dt
    end
  done;
  {
    o_infected = !infected;
    o_ratio = float_of_int !infected /. n_f;
    o_t0 = !t0;
    o_t_end = !t;
    o_attempts = !attempts;
  }

(** Average infection ratio over [runs] independent outbreaks. *)
let mean_ratio ?(runs = 5) c =
  let total = ref 0. in
  for k = 0 to runs - 1 do
    total := !total +. (run { c with seed = c.seed + k }).o_ratio
  done;
  !total /. float_of_int runs
