(** A small fixed-step Runge–Kutta (RK4) integrator for the epidemic ODEs. *)

(** One RK4 step of [dt] for state [y] at time [t] under derivative [f]. *)
let step ~f ~t ~dt y =
  let n = Array.length y in
  let add a scale b = Array.init n (fun i -> a.(i) +. (scale *. b.(i))) in
  let k1 = f t y in
  let k2 = f (t +. (dt /. 2.)) (add y (dt /. 2.) k1) in
  let k3 = f (t +. (dt /. 2.)) (add y (dt /. 2.) k2) in
  let k4 = f (t +. dt) (add y dt k3) in
  Array.init n (fun i ->
      y.(i)
      +. (dt /. 6. *. (k1.(i) +. (2. *. k2.(i)) +. (2. *. k3.(i)) +. k4.(i))))

(** Integrate from [t0] to [t1]; returns the final state. *)
let integrate ~f ~y0 ~t0 ~t1 ~dt =
  let y = ref y0 in
  let t = ref t0 in
  while !t < t1 -. (dt /. 2.) do
    let h = min dt (t1 -. !t) in
    y := step ~f ~t:!t ~dt:h !y;
    t := !t +. h
  done;
  !y

(** Integrate until [stop t y] becomes true (or [t_max]); returns the first
    (t, y) satisfying the predicate, or [None] if it never does. *)
let integrate_until ~f ~y0 ~t0 ~dt ~t_max ~stop =
  let y = ref y0 in
  let t = ref t0 in
  let result = ref None in
  while !result = None && !t < t_max do
    y := step ~f ~t:!t ~dt !y;
    t := !t +. dt;
    if stop !t !y then result := Some (!t, !y)
  done;
  !result

(** Sample the trajectory every [sample_dt] from [t0] to [t1] (inclusive
    endpoints), for plotting. *)
let trajectory ~f ~y0 ~t0 ~t1 ~dt ~sample_dt =
  let samples = ref [ (t0, y0) ] in
  let y = ref y0 in
  let t = ref t0 in
  let next_sample = ref (t0 +. sample_dt) in
  while !t < t1 -. (dt /. 2.) do
    let h = min dt (t1 -. !t) in
    y := step ~f ~t:!t ~dt:h !y;
    t := !t +. h;
    if !t >= !next_sample -. (dt /. 2.) then begin
      samples := (!t, !y) :: !samples;
      next_sample := !next_sample +. sample_dt
    end
  done;
  List.rev !samples
