(** A discrete-event stochastic outbreak simulator, cross-validating the
    ODE model: N individual hosts, random hit-list contacts, probabilistic
    proactive protection, and an antibody wave γ seconds after the first
    producer is probed. *)

type config = {
  n : int;           (** vulnerable hosts *)
  producers : int;   (** how many run the full Sweeper stack *)
  beta : float;      (** contacts per infected host per second *)
  rho : float;       (** probability an attempt beats the protection *)
  gamma : float;     (** community response time, seconds *)
  dt : float;        (** simulation step *)
  t_max : float;
  seed : int;
}

type outcome = {
  o_infected : int;
  o_ratio : float;
  o_t0 : float option;  (** when the first producer was probed *)
  o_t_end : float;
  o_attempts : int;     (** total infection attempts made *)
}

val poisson : Random.State.t -> float -> int
(** Poisson(λ) via Knuth's product method — for small λ only. *)

val binomial : Random.State.t -> int -> float -> int
(** Bernoulli(p) repeated n times: exact for small n, Poisson approximation
    for small np (the early-outbreak regime), normal approximation for the
    large counts of a full-blown outbreak. *)

val run : config -> outcome
(** One stochastic outbreak. *)

val mean_ratio : ?runs:int -> config -> float
(** Average infection ratio over independent outbreaks. *)
