(** The Susceptible–Infected community-defense model of the paper's
    Section 6.

    State is [I; P]: infected hosts and producers contacted at least once,
    evolving under

    {v
      dI/dt = β ρ I (1 - α - I/N)
      dP/dt = α β I (1 - P/(αN))
    v}

    (ρ = 1 recovers the unprotected equations). T0 is the first time
    P(t) ≥ 1 — a producer has seen an infection attempt and antibody
    generation can start; after the community response time γ the antibody
    is everywhere, so the outbreak's final size is I(T0 + γ). *)

type params = {
  beta : float;   (** contact rate (infection attempts per host per second) *)
  rho : float;    (** per-attempt success probability under protection *)
  alpha : float;  (** fraction of vulnerable hosts that are Producers *)
  n : float;      (** vulnerable population *)
  i0 : float;     (** initially infected hosts *)
}

val slammer : params
(** Slammer as observed: β = 0.1, N = 100 000. *)

val rho_aslr : float
(** ρ for 12 bits of address-space entropy (2⁻¹²). *)

val hitlist : ?beta:float -> ?rho:float -> unit -> params
(** A hit-list worm (default β = 1000) against ASLR-protected hosts. *)

val derivatives : params -> float -> float array -> float array

val t0 : ?t_max:float -> params -> float option
(** Time at which the first producer has been contacted; [None] when there
    are no producers or the worm never reaches one. *)

val infected_at : params -> t:float -> float

val infection_ratio : params -> gamma:float -> float
(** The headline quantity: I(T0 + γ)/N — the fraction infected before the
    antibody closed the vulnerability. 1 - α when no producer exists. *)

val sweep_alpha :
  params -> gamma:float -> alphas:float list -> (float * float) list
(** One line of Figures 6–8: infection ratio over deployment ratios. *)

val max_gamma_for_ratio :
  ?lo:float -> ?hi:float -> params -> target:float -> float option
(** The γ budget keeping the infection ratio below [target] (bisection). *)
