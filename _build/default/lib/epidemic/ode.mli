(** A small fixed-step Runge–Kutta (RK4) integrator for the epidemic ODEs. *)

val step :
  f:(float -> float array -> float array) ->
  t:float ->
  dt:float ->
  float array ->
  float array
(** One RK4 step of [dt] for state [y] at time [t] under derivative [f]. *)

val integrate :
  f:(float -> float array -> float array) ->
  y0:float array ->
  t0:float ->
  t1:float ->
  dt:float ->
  float array
(** Integrate from [t0] to [t1]; returns the final state. *)

val integrate_until :
  f:(float -> float array -> float array) ->
  y0:float array ->
  t0:float ->
  dt:float ->
  t_max:float ->
  stop:(float -> float array -> bool) ->
  (float * float array) option
(** Integrate until [stop t y] becomes true (or [t_max]); the first (t, y)
    satisfying the predicate, or [None]. *)

val trajectory :
  f:(float -> float array -> float array) ->
  y0:float array ->
  t0:float ->
  t1:float ->
  dt:float ->
  sample_dt:float ->
  (float * float array) list
(** Sample the trajectory every [sample_dt], for plotting. *)
