(** The Susceptible–Infected community-defense model of Section 6.

    State is [I; P]: infected hosts and producers contacted at least once.
    With proactive (probabilistic) protection ρ, equations (3)–(4):

    {v
      dI/dt = β ρ I (1 - α - I/N)
      dP/dt = α β I (1 - P/(αN))
    v}

    (ρ = 1 recovers equations (1)–(2)). T0 is the first time P(t) ≥ 1 — a
    producer has seen an infection attempt and antibody generation can
    start. After the community response time γ the antibody is everywhere,
    so the outbreak's final size is I(T0 + γ). *)

type params = {
  beta : float;   (** contact rate (infection attempts per host per second) *)
  rho : float;    (** per-attempt success probability under protection *)
  alpha : float;  (** fraction of vulnerable hosts that are Producers *)
  n : float;      (** vulnerable population *)
  i0 : float;     (** initially infected hosts *)
}

let slammer = { beta = 0.1; rho = 1.0; alpha = 0.001; n = 100_000.; i0 = 1. }

(** ρ for 12 bits of address-space entropy, as measured in Section 6.3. *)
let rho_aslr = 1. /. 4096.

let hitlist ?(beta = 1000.) ?(rho = rho_aslr) () =
  { beta; rho; alpha = 0.001; n = 100_000.; i0 = 1. }

let derivatives p _t y =
  let i = y.(0) and pr = y.(1) in
  let di = p.beta *. p.rho *. i *. (1. -. p.alpha -. (i /. p.n)) in
  let dp =
    if p.alpha <= 0. then 0.
    else p.beta *. p.alpha *. i *. (1. -. (pr /. (p.alpha *. p.n)))
  in
  [| di; dp |]

(* A reasonable integration step for the given dynamics: much smaller than
   the worm's doubling time. *)
let auto_dt p =
  let rate = max 1e-9 (p.beta *. max p.rho 0.001) in
  min 0.01 (0.05 /. rate)

(** Time at which the first producer has been contacted (P(t) = 1).
    [None] when there are no producers or the worm never reaches one. *)
let t0 ?(t_max = 1e7) p =
  if p.alpha <= 0. then None
  else
    let dt = auto_dt p in
    Ode.integrate_until ~f:(derivatives p) ~y0:[| p.i0; 0. |] ~t0:0. ~dt
      ~t_max ~stop:(fun _ y -> y.(1) >= 1.)
    |> Option.map fst

(** Infected population at absolute time [t]. *)
let infected_at p ~t =
  if t <= 0. then p.i0
  else
    let dt = auto_dt p in
    (Ode.integrate ~f:(derivatives p) ~y0:[| p.i0; 0. |] ~t0:0. ~t1:t ~dt).(0)

(** The headline quantity: I(T0 + γ) / N, the fraction of vulnerable hosts
    infected before the antibody closed the vulnerability. 1 - α when the
    worm never trips a producer (consumers are on their own). *)
let infection_ratio p ~gamma =
  match t0 p with
  | None -> 1. -. p.alpha
  | Some t_zero -> min 1. (infected_at p ~t:(t_zero +. gamma) /. p.n)

(** Infection-ratio curve over deployment ratios for a fixed γ — one line
    of Figures 6, 7 and 8. *)
let sweep_alpha p ~gamma ~alphas =
  List.map (fun a -> (a, infection_ratio { p with alpha = a } ~gamma)) alphas

(** The γ needed to keep the infection ratio below [target] (bisection on
    γ, which the ratio is monotone in). *)
let max_gamma_for_ratio ?(lo = 0.) ?(hi = 1000.) p ~target =
  let ratio g = infection_ratio p ~gamma:g in
  if ratio lo > target then None
  else begin
    let lo = ref lo and hi = ref hi in
    for _ = 1 to 40 do
      let mid = (!lo +. !hi) /. 2. in
      if ratio mid <= target then lo := mid else hi := mid
    done;
    Some !lo
  end
