(** Input signatures: the network-level antibody.

    Two flavours, as in Section 3.3: exact-match signatures (zero false
    positives, impervious to malicious training, but trivially evaded by
    polymorphism — VSEFs are the safety net) and token signatures built
    from the invariant substrings of several exploit variants, in the
    spirit of Polygraph. *)

type t =
  | Exact of string
  | Tokens of string list  (** ordered substrings, all required *)

(** Exact-match signature for a captured exploit message. *)
let exact msg = Exact msg

let contains_from hay pos needle =
  let nl = String.length needle and hl = String.length hay in
  let rec at i =
    if i + nl > hl then None
    else if String.sub hay i nl = needle then Some (i + nl)
    else at (i + 1)
  in
  if nl = 0 then Some pos else at pos

(** [matches sig msg]: does the message match? Tokens must appear in order. *)
let matches t msg =
  match t with
  | Exact s -> String.equal s msg
  | Tokens toks ->
    let rec go pos = function
      | [] -> true
      | tok :: rest -> (
        match contains_from msg pos tok with
        | Some pos' -> go pos' rest
        | None -> false)
    in
    go 0 toks

let to_filter t = fun msg -> matches t msg

(* Longest substring of [s] starting at [i] that occurs in every string of
   [others] at-or-after the positions in [cursors]. *)
let common_run s i others =
  let max_len = String.length s - i in
  let rec grow len =
    if len >= max_len then len
    else
      let cand = String.sub s i (len + 1) in
      if List.for_all (fun o -> contains_from o 0 cand <> None) others then
        grow (len + 1)
      else len
  in
  grow 0

(** Token signature from several variants of the same exploit: the maximal
    substrings (of at least [min_len] bytes) of the first variant that
    occur in all of them, taken greedily left to right. *)
let tokens_of_variants ?(min_len = 4) variants =
  match variants with
  | [] -> invalid_arg "Signature.tokens_of_variants: no variants"
  | [ only ] -> Exact only
  | first :: others ->
    let n = String.length first in
    let toks = ref [] in
    let i = ref 0 in
    while !i < n do
      let run = common_run first !i others in
      if run >= min_len then begin
        toks := String.sub first !i run :: !toks;
        i := !i + run
      end
      else incr i
    done;
    Tokens (List.rev !toks)

let to_string = function
  | Exact s ->
    Printf.sprintf "exact[%d bytes]%s" (String.length s)
      (if String.length s <= 48 then ": " ^ String.escaped s
       else ": " ^ String.escaped (String.sub s 0 45) ^ "...")
  | Tokens toks ->
    "tokens: "
    ^ String.concat " * "
        (List.map
           (fun t ->
             if String.length t <= 24 then String.escaped t
             else String.escaped (String.sub t 0 21) ^ "...")
           toks)
