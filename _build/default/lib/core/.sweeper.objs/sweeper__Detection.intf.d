lib/core/detection.mli: Vm
