lib/core/antibody.mli: Minic Osim Signature Vsef
