lib/core/vsef.mli: Osim Vm
