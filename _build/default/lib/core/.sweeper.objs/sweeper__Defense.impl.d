lib/core/defense.ml: Antibody Detection List Minic Option Orchestrator Osim Recovery Signature Vsef
