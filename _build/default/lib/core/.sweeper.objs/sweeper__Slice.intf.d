lib/core/slice.mli: Int Osim Set Vm
