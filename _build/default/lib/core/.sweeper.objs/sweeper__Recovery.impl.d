lib/core/recovery.ml: List Osim Vm
