lib/core/signature.mli:
