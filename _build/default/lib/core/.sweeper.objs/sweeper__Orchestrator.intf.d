lib/core/orchestrator.mli: Antibody Coredump Detection Int Membug Osim Set Signature Slice Taint Vm Vsef
