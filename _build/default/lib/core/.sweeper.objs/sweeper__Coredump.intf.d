lib/core/coredump.mli: Osim Vm Vsef
