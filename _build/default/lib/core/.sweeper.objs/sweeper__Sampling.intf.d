lib/core/sampling.mli: Detection Osim Vm
