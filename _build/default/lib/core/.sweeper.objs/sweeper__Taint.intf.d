lib/core/taint.mli: Int Osim Set Vm Vsef
