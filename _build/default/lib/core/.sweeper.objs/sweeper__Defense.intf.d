lib/core/defense.mli: Antibody Minic Osim Vsef
