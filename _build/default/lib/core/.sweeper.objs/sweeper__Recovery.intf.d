lib/core/recovery.mli: Osim Vm
