lib/core/report.ml: Coredump List Membug Orchestrator Osim Printf Slice String Taint Vsef
