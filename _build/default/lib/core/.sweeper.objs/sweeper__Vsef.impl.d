lib/core/vsef.ml: Array Detection Hashtbl List Osim Printf Vm
