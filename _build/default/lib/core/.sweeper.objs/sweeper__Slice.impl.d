lib/core/slice.ml: Array Hashtbl Int List Osim Set Vm
