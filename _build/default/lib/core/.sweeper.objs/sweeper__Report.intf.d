lib/core/report.mli: Orchestrator Osim Vsef
