lib/core/coredump.ml: Hashtbl List Option Osim Printf String Vm Vsef
