lib/core/antibody.ml: List Minic Option Osim Signature Vm Vsef
