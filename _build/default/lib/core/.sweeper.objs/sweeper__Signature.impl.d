lib/core/signature.ml: List Printf String
