lib/core/membug.mli: Osim Vm Vsef
