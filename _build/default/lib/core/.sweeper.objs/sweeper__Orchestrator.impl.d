lib/core/orchestrator.ml: Antibody Coredump Detection Int List Membug Option Osim Recovery Set Signature Slice String Taint Unix Vm Vsef
