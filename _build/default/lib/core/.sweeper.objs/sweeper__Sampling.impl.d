lib/core/sampling.ml: Detection Osim Taint Vm
