lib/core/membug.ml: Hashtbl List Osim Printf Vm Vsef
