lib/core/taint.ml: Array Detection Hashtbl Int List Osim Printf Set String Vm Vsef
