lib/core/detection.ml: Printf Vm
