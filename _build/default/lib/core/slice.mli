(** Dynamic slicing over a full dependence graph.

    During replay every executed instruction becomes a node: data
    dependences through the last writer of each register and memory byte,
    flag dependences through the last comparison, control dependences
    through the last branch. The backward slice from the faulting
    instruction is everything that influenced it — a superset of what
    taint analysis sees, which is why it acts as the sanity check on every
    other analysis. Forward slices (everything an input influenced) come
    from the same graph. *)

module Int_set : Set.S with type elt = int and type t = Set.Make(Int).t

(** The collected graph (opaque; kept inside a {!session}). *)
type t

type summary = {
  s_nodes : int;        (** dynamic instructions in the window *)
  s_slice_size : int;   (** dynamic instructions in the slice *)
  s_pcs : Int_set.t;    (** static instructions in the slice *)
  s_msgs : Int_set.t;   (** input messages the fault depends on *)
  s_fault_pc : int;
}

type result = {
  sl_summary : summary;
  sl_instructions : int;
}

val run : ?fuel:int -> Osim.Process.t -> result
(** Attach the graph collector, run the replay, slice backward from the
    fault (or from the final instruction if the replay ended cleanly). *)

val verifies : summary -> int -> bool
(** Does the slice contain an instruction another analysis blamed? The
    slice is the ground truth: a claim outside it is wrong. *)

(** A forward slice: every dynamic instruction influenced by a seed set. *)
type forward = {
  fw_size : int;       (** dynamic instructions influenced *)
  fw_pcs : Int_set.t;  (** static instructions influenced *)
}

(** A replay that keeps its graph for further queries. *)
type session = {
  graph : t;
  outcome : Vm.Cpu.outcome;
  backward : summary;
}

val run_session : ?fuel:int -> Osim.Process.t -> session

val forward_from_message : session -> msg_id:int -> forward
(** Everything influenced by the given input message. *)
