(** Antibodies: the shareable defense artifacts, distributed piecemeal as
    each analysis stage completes (Section 3.3, "Distribution").

    The concrete manifestation is a set of VSEFs plus, when available, an
    input signature and the exploit-triggering input. Untrusting consumers
    can verify a bundle by replaying the included exploit against their own
    copy of the application under heavyweight monitoring — {!verify} does
    exactly that. By construction VSEFs cannot be harmful: an incorrect one
    only adds monitoring. *)

type stage =
  | Initial  (** core-dump VSEF only — available within milliseconds *)
  | Refined  (** plus memory-bug-derived VSEFs *)
  | Full     (** plus taint VSEF, input signature, exploit input *)

type t = {
  ab_app : string;  (** registry key of the vulnerable application *)
  ab_stage : stage;
  ab_vsefs : Vsef.t list;
  ab_signature : Signature.t option;
  ab_exploit_input : string list option;
      (** the triggering stream, for consumer-side verification *)
}

let stage_to_string = function
  | Initial -> "initial"
  | Refined -> "refined"
  | Full -> "full"

let initial ~app vsef =
  { ab_app = app; ab_stage = Initial; ab_vsefs = [ vsef ];
    ab_signature = None; ab_exploit_input = None }

let refine ab vsefs = { ab with ab_stage = Refined; ab_vsefs = ab.ab_vsefs @ vsefs }

let complete ab ?taint_vsef ~signature ~exploit_input () =
  {
    ab with
    ab_stage = Full;
    ab_vsefs = ab.ab_vsefs @ Option.to_list taint_vsef;
    ab_signature = Some signature;
    ab_exploit_input = Some exploit_input;
  }

(** Deploy an antibody on a host: install the VSEFs on the process and the
    input signature at its network proxy. Returns the installed handles. *)
let deploy (proc : Osim.Process.t) ab =
  let installed = List.map (Vsef.install proc) ab.ab_vsefs in
  (match ab.ab_signature with
  | Some s ->
    Osim.Netlog.add_filter proc.Osim.Process.net
      ~name:("antibody-" ^ ab.ab_app) (Signature.to_filter s)
  | None -> ());
  installed

let undeploy (proc : Osim.Process.t) ab installed =
  List.iter Vsef.uninstall installed;
  if ab.ab_signature <> None then
    Osim.Netlog.remove_filter proc.Osim.Process.net ~name:("antibody-" ^ ab.ab_app)

(** Consumer-side verification: feed the included exploit input to a fresh,
    sandboxed copy of the application and check that it misbehaves (faults
    or reaches exec). Verification is deferred by time-critical consumers;
    this is the check they run afterwards. *)
let verify ab ~(compile : unit -> Minic.Codegen.compiled) =
  match ab.ab_exploit_input with
  | None -> false
  | Some stream ->
    let proc = Osim.Process.load ~aslr:true ~seed:97 (compile ()) in
    proc.Osim.Process.sandbox <- true;
    let rec feed = function
      | [] -> false
      | msg :: rest -> (
        (match Osim.Process.send_message proc msg with
        | Ok _ | Error _ -> ());
        match Osim.Process.run ~fuel:20_000_000 proc with
        | Vm.Cpu.Faulted _ -> true
        | Vm.Cpu.Halted -> proc.Osim.Process.compromised <> None
        | Vm.Cpu.Blocked -> feed rest
        | Vm.Cpu.Out_of_fuel -> false)
    in
    feed stream
