(** Input signatures: the network-level antibody.

    Two flavours, as in the paper's Section 3.3: exact-match signatures
    (zero false positives, impervious to malicious training, but trivially
    evaded by polymorphism — VSEFs are the safety net) and token signatures
    built from the invariant substrings of several exploit variants, in the
    spirit of Polygraph. *)

type t =
  | Exact of string
  | Tokens of string list  (** ordered substrings, all required *)

val exact : string -> t
(** Exact-match signature for a captured exploit message. *)

val matches : t -> string -> bool
(** Does the message match? Tokens must appear in order. *)

val to_filter : t -> string -> bool

val tokens_of_variants : ?min_len:int -> string list -> t
(** Token signature from several variants of the same exploit: the maximal
    substrings (≥ [min_len] bytes, default 4) of the first variant present
    in all of them, taken greedily left to right. A single variant yields
    an exact signature. *)

val to_string : t -> string
