(** Detections: the events Sweeper's monitors and antibodies raise when an
    attack is recognized, and their classification. *)

(** Why an execution was flagged. *)
type kind =
  | Crash_fault of Vm.Event.fault
      (** lightweight monitoring: ASLR turned the exploit into a fault *)
  | Vsef_trip of string
      (** an installed execution filter vetoed an instruction *)
  | Signature_match of string
      (** an input filter matched at the network proxy *)
  | Taint_sink of string
      (** heavyweight taint analysis saw tainted data misused *)

type t = {
  d_kind : kind;
  d_pc : int;        (** instruction at which the detection fired *)
  d_detail : string;
}

(** Raised by VSEF hooks from inside the CPU's pre-hook phase, vetoing the
    instruction before it commits. *)
exception Detected of t

let detect kind ~pc ~detail = raise (Detected { d_kind = kind; d_pc = pc; d_detail = detail })

let kind_to_string = function
  | Crash_fault f -> "fault:" ^ Vm.Event.fault_to_string f
  | Vsef_trip v -> "vsef:" ^ v
  | Signature_match s -> "signature:" ^ s
  | Taint_sink s -> "taint:" ^ s

let to_string d =
  Printf.sprintf "%s at 0x%x (%s)" (kind_to_string d.d_kind) d.d_pc d.d_detail
