(** Request sampling (the paper's Section 4.2): heavyweight taint
    monitoring on a fraction of requests during normal execution.

    Randomization misses attacks that do not corrupt memory and the
    occasional exploit whose address guess is right; sampling closes that
    gap probabilistically. Every [rate]-th message is serviced under full
    dynamic taint analysis, whose online guard vetoes a tainted control
    transfer or a tainted [exec] before it commits. *)

type t = {
  server : Osim.Server.t;
  mutable rate : int;  (** sample every [rate]-th message; 0 disables *)
  mutable counter : int;
  mutable sampled : int;  (** messages serviced under taint monitoring *)
  mutable alarms : int;   (** attacks the sampling monitor caught *)
}

val create : ?rate:int -> Osim.Server.t -> t

val due : t -> bool
(** Should the next message be sampled? Advances the phase counter. *)

type outcome =
  | Plain of
      [ `Served of int | `Filtered of string | `Stopped
      | `Crashed of int * Vm.Event.fault | `Infected of int * string ]
  | Taint_alarm of Detection.t
      (** the sampling monitor vetoed a tainted operation *)

val handle : t -> string -> outcome
(** Service one message, sampling it when due. *)

val sampled_fraction : t -> float
