(** Detections: the events Sweeper's monitors and antibodies raise when an
    attack is recognized. *)

(** Why an execution was flagged. *)
type kind =
  | Crash_fault of Vm.Event.fault
      (** lightweight monitoring: ASLR turned the exploit into a fault *)
  | Vsef_trip of string
      (** an installed execution filter vetoed an instruction *)
  | Signature_match of string
      (** an input filter matched at the network proxy *)
  | Taint_sink of string
      (** taint monitoring saw tainted data about to be misused *)

type t = {
  d_kind : kind;
  d_pc : int;  (** instruction at which the detection fired *)
  d_detail : string;
}

exception Detected of t
(** Raised by VSEF/taint hooks from inside the CPU's pre-hook phase,
    vetoing the instruction before it commits. *)

val detect : kind -> pc:int -> detail:string -> 'a
(** Raise {!Detected}. *)

val kind_to_string : kind -> string
val to_string : t -> string
