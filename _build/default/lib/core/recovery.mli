(** Recovery: rollback plus re-execution without the attacker's input.

    The process is rolled back to a checkpoint predating the malicious
    message(s); the network log is replayed with those messages dropped
    (and permanently quarantined); responses already committed to clients
    are suppressed (the output-commit handling inherited from Rx). When
    the replay catches up with the log the server is live again — no
    restart, no lost in-memory state. *)

type outcome = {
  rec_status : [ `Recovered | `Crashed_again of Vm.Event.fault | `Stopped ];
  rec_replayed : int;  (** messages re-executed *)
  rec_skipped : int;   (** malicious messages dropped *)
  rec_instructions : int;
}

val recover : Osim.Server.t -> Osim.Checkpoint.t -> skip:int list -> outcome
