(** Dynamic memory-bug detection, attached during sandboxed replay.

    Detects the three bug classes of the paper's Section 3.2 — stack
    smashing (writes to saved return-address slots, with pre-existing
    frames inferred from the frame pointer), heap overflow (stores outside
    any live chunk, with pre-checkpoint buffers inferred from the heap
    image), and double frees — and attributes each to the offending
    instruction, which the refined VSEFs are built from. *)

type finding =
  | Stack_smash of { store_pc : int; slot_addr : int }
  | Heap_overflow of { store_pc : int; addr : int }
  | Double_free of { call_pc : int; ptr : int }
  | Dangling_write of { store_pc : int; addr : int }

type report = {
  m_findings : finding list;  (** in detection order, one per site *)
  m_fault : Vm.Event.fault option;  (** the replayed crash, if it recurred *)
  m_instructions : int;  (** dynamic instructions monitored *)
}

val finding_pc : finding -> int
val finding_to_string : describe:(int -> string) -> finding -> string

val vsef_of_finding :
  app:string -> proc:Osim.Process.t -> finding -> Vsef.t option
(** The refined VSEF a finding justifies; [proc] supplies the image bases
    for making the check relocatable. *)

val run : ?fuel:int -> Osim.Process.t -> report
(** Attach the detector, run until the process faults, blocks or halts,
    and detach. Call after rolling back with the network log in replay
    mode. *)
