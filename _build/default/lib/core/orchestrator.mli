(** The end-to-end Sweeper defense process of the paper's Figure 3:
    lightweight monitoring trips → rollback → staged heavyweight analysis
    (memory state → memory bugs → taint → input isolation → slicing) →
    antibody generation → recovery. Each stage re-executes from the same
    checkpoint with different instrumentation attached. *)

module Int_set : Set.S with type elt = int and type t = Set.Make(Int).t

type stage_timing = {
  st_name : string;
  st_wall_ms : float;     (** measured harness time for the stage *)
  st_instructions : int;  (** dynamic instructions monitored *)
}

type report = {
  a_app : string;
  a_fault : Vm.Event.fault;
  a_coredump : Coredump.report;
  a_membug : Membug.report;
  a_taint : Taint.result;
  a_isolation : int list;  (** message ids reproducing the crash *)
  a_isolation_stream : bool;
      (** true when only the (minimized) suspect stream reproduces it —
          stateful exploits like the CVS double free *)
  a_slice : Slice.summary;
  a_slice_verifies : bool;  (** every blamed pc is inside the slice *)
  a_vsefs : Vsef.t list;    (** initial + refined + taint, in order found *)
  a_signature : Signature.t option;
  a_antibody : Antibody.t;
  a_timings : stage_timing list;
  a_time_to_first_vsef_ms : float;
  a_time_to_best_vsef_ms : float;
  a_initial_analysis_ms : float;  (** VSEFs + exploit input isolated *)
  a_total_ms : float;
}

val handle_attack :
  ?recover:bool -> app:string -> Osim.Server.t -> Vm.Event.fault -> report
(** Analyze an attack just detected on the server. With [recover] (the
    default) the process ends up rolled back and live again, with the
    antibody installed and the malicious input quarantined. *)

val protected_handle :
  app:string ->
  Osim.Server.t ->
  string ->
  [ `Served of int
  | `Filtered of string
  | `Stopped
  | `Attack of report
  | `Compromised
  | `Blocked_by_vsef of Detection.t ]
(** Serve one message on a Sweeper-protected server, running the full
    defense process when the lightweight monitoring trips, and handling
    VSEF vetoes by dropping the in-flight message and rolling back. *)
