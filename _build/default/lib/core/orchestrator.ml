(** The end-to-end Sweeper defense process of the paper's Figure 3:
    lightweight monitoring trips → rollback → staged heavyweight analysis
    (memory state → memory bugs → taint → input isolation → slicing) →
    antibody generation → recovery. Each stage re-executes from the same
    checkpoint with different instrumentation attached. *)

module Int_set = Set.Make (Int)

type stage_timing = {
  st_name : string;
  st_wall_ms : float;      (** measured harness time for the stage *)
  st_instructions : int;   (** dynamic instructions monitored *)
}

type report = {
  a_app : string;
  a_fault : Vm.Event.fault;
  a_coredump : Coredump.report;
  a_membug : Membug.report;
  a_taint : Taint.result;
  a_isolation : int list;  (** message ids reproducing the crash *)
  a_isolation_stream : bool;
      (** true when only the full suspect stream reproduces it (stateful
          exploits like the CVS double free) *)
  a_slice : Slice.summary;
  a_slice_verifies : bool;  (** every blamed pc is inside the slice *)
  a_vsefs : Vsef.t list;    (** initial + refined + taint, in order found *)
  a_signature : Signature.t option;
  a_antibody : Antibody.t;
  a_timings : stage_timing list;
  a_time_to_first_vsef_ms : float;
  a_time_to_best_vsef_ms : float;
  a_initial_analysis_ms : float;  (** VSEFs + exploit input isolated *)
  a_total_ms : float;
}

let timed _name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let ms = (Unix.gettimeofday () -. t0) *. 1000. in
  (r, ms)

(* Roll back and arm replay of the suspect window. *)
let rearm proc ck ~upto ~skip =
  Osim.Checkpoint.rollback proc ck;
  Osim.Netlog.set_mode proc.Osim.Process.net
    (Osim.Netlog.Replay { upto; skip });
  proc.Osim.Process.sandbox <- true

(* Replay the window with no instrumentation; true when the crash recurs. *)
let replay_crashes proc ck ~upto ~skip =
  rearm proc ck ~upto ~skip;
  match Osim.Process.run ~fuel:50_000_000 proc with
  | Vm.Cpu.Faulted _ -> true
  | Vm.Cpu.Halted -> proc.Osim.Process.compromised <> None
  | Vm.Cpu.Blocked | Vm.Cpu.Out_of_fuel -> false

(** Analyze an attack that was just detected on [server] as [fault].
    Leaves the process rolled back and recovered: live again with the
    antibody installed (unless [recover] is false). *)
let handle_attack ?(recover = true) ~app (server : Osim.Server.t)
    (fault : Vm.Event.fault) =
  let proc = server.Osim.Server.proc in
  let net = proc.Osim.Process.net in
  let t_start = Unix.gettimeofday () in
  let timings = ref [] in
  let record name ms instrs =
    timings := { st_name = name; st_wall_ms = ms; st_instructions = instrs } :: !timings
  in
  (* --- Stage 1: memory-state analysis (no rollback needed) ------------- *)
  let coredump, cd_ms = timed "memory-state" (fun () -> Coredump.analyze proc fault) in
  record "Memory State Analysis" cd_ms 0;
  let t_first_vsef = (Unix.gettimeofday () -. t_start) *. 1000. in
  let initial_vsefs =
    match coredump.Coredump.c_vsef with
    | Some v -> [ { v with Vsef.v_app = app } ]
    | None -> []
  in
  (* The rollback point: the newest checkpoint at or before the message
     being serviced when the monitors tripped. *)
  let crash_cursor = Osim.Netlog.cursor net in
  let ck =
    match
      Osim.Checkpoint.before_message server.Osim.Server.ring
        ~msg_index:(max 0 (crash_cursor - 1))
    with
    | Some ck -> ck
    | None -> Option.get (Osim.Checkpoint.oldest server.Osim.Server.ring)
  in
  let suspects =
    List.map (fun m -> m.Osim.Netlog.m_id)
      (Osim.Netlog.consumed_since net ck.Osim.Checkpoint.ck_net_cursor)
  in
  let upto = crash_cursor in
  (* --- Stage 2: memory-bug detection ----------------------------------- *)
  let membug, mb_ms =
    timed "membug" (fun () ->
        rearm proc ck ~upto ~skip:Int_set.empty;
        Membug.run proc)
  in
  record "Memory Bug Detection" mb_ms membug.Membug.m_instructions;
  let refined_vsefs =
    List.filter_map (Membug.vsef_of_finding ~app ~proc)
      (List.sort_uniq compare membug.Membug.m_findings)
  in
  let t_best_vsef = (Unix.gettimeofday () -. t_start) *. 1000. in
  (* --- Stage 3: dynamic taint analysis ---------------------------------- *)
  let taint, ta_ms =
    timed "taint" (fun () ->
        rearm proc ck ~upto ~skip:Int_set.empty;
        Taint.run proc)
  in
  record "Input/Taint Analysis" ta_ms taint.Taint.t_instructions;
  let taint_msgs = Taint.verdict_msgs taint.Taint.t_verdict in
  (* --- Stage 4: input isolation (suspects one at a time) ---------------- *)
  let (isolation, stream_only), iso_ms =
    timed "isolation" (fun () ->
        match taint_msgs with
        | _ :: _ -> (taint_msgs, false)  (* taint already isolated the input *)
        | [] ->
          let all = Int_set.of_list suspects in
          let alone =
            List.filter
              (fun m ->
                replay_crashes proc ck ~upto ~skip:(Int_set.remove m all))
              suspects
          in
          if alone <> [] then (alone, false)
          else if not (replay_crashes proc ck ~upto ~skip:Int_set.empty) then
            ([], false)
          else begin
            (* Only a stream reproduces it (stateful exploit). Minimize it
               greedily: drop each message whose absence keeps the crash. *)
            let keep = ref all in
            List.iter
              (fun m ->
                let candidate = Int_set.remove m !keep in
                if
                  replay_crashes proc ck ~upto
                    ~skip:(Int_set.diff all candidate)
                then keep := candidate)
              suspects;
            (Int_set.elements !keep, true)
          end)
  in
  record "Input Isolation" iso_ms 0;
  let t_initial = (Unix.gettimeofday () -. t_start) *. 1000. in
  (* --- Stage 5: dynamic backward slicing -------------------------------- *)
  let slice_res, sl_ms =
    timed "slicing" (fun () ->
        rearm proc ck ~upto ~skip:Int_set.empty;
        Slice.run proc)
  in
  let slice = slice_res.Slice.sl_summary in
  record "Dynamic Slicing" sl_ms slice_res.Slice.sl_instructions;
  (* Cross-check every blamed instruction against the slice. *)
  let blamed_pcs =
    List.map Membug.finding_pc membug.Membug.m_findings
    @ (match coredump.Coredump.c_diagnosis with
      | Coredump.Null_dereference | Coredump.Stack_smash_suspected
      | Coredump.Heap_overflow_suspected | Coredump.Double_free_suspected ->
        [ coredump.Coredump.c_crash_pc ]
      | Coredump.Unclassified -> [])
  in
  let slice_verifies = List.for_all (Slice.verifies slice) blamed_pcs in
  (* --- Antibody assembly ------------------------------------------------ *)
  let taint_vsef = Taint.vsef_of_result ~app ~proc taint in
  let responsible_payloads =
    List.map (fun id -> (Osim.Netlog.message net id).Osim.Netlog.m_payload)
      isolation
  in
  let signature =
    match responsible_payloads with
    | [] -> None
    | [ one ] when not stream_only -> Some (Signature.exact one)
    | stream -> Some (Signature.exact (String.concat "" stream))
  in
  let antibody =
    let base =
      match initial_vsefs with
      | v :: _ -> Antibody.initial ~app v
      | [] -> (
        match refined_vsefs with
        | v :: _ -> Antibody.initial ~app v
        | [] ->
          { Antibody.ab_app = app; ab_stage = Antibody.Initial; ab_vsefs = [];
            ab_signature = None; ab_exploit_input = None })
    in
    let refined = Antibody.refine base refined_vsefs in
    match signature with
    | Some s ->
      Antibody.complete refined ?taint_vsef ~signature:s
        ~exploit_input:responsible_payloads ()
    | None -> refined
  in
  (* --- Recovery ---------------------------------------------------------- *)
  let all_vsefs = initial_vsefs @ refined_vsefs @ Option.to_list taint_vsef in
  if recover then begin
    (* Install the antibody first, then roll back and re-execute without
       the malicious input. *)
    ignore (Antibody.deploy proc antibody);
    let skip = if isolation <> [] then isolation else suspects in
    ignore (Recovery.recover server ck ~skip)
  end;
  let t_total = (Unix.gettimeofday () -. t_start) *. 1000. in
  {
    a_app = app;
    a_fault = fault;
    a_coredump = coredump;
    a_membug = membug;
    a_taint = taint;
    a_isolation = isolation;
    a_isolation_stream = stream_only;
    a_slice = slice;
    a_slice_verifies = slice_verifies;
    a_vsefs = all_vsefs;
    a_signature = signature;
    a_antibody = antibody;
    a_timings = List.rev !timings;
    a_time_to_first_vsef_ms = t_first_vsef;
    a_time_to_best_vsef_ms = t_best_vsef;
    a_initial_analysis_ms = t_initial;
    a_total_ms = t_total;
  }

(** Serve messages on a Sweeper-protected server, running the full defense
    process when the lightweight monitoring trips. Returns the analysis
    reports of the attacks handled. *)
let protected_handle ~app (server : Osim.Server.t) payload =
  match Osim.Server.handle server payload with
  | `Served id -> `Served id
  | `Filtered f -> `Filtered f
  | `Stopped -> `Stopped
  | `Crashed (_, fault) -> `Attack (handle_attack ~app server fault)
  | `Infected (_, _cmd) ->
    (* A compromise slipped past the monitors (correct ASLR guess). On a
       full-Sweeper host we still roll back and analyze: the infection left
       a fault-free trail, but the compromise event is the trigger. *)
    `Compromised
  | exception Detection.Detected d ->
    (* A VSEF vetoed the instruction: drop the in-flight message, roll back
       to a checkpoint predating it (the latest one may sit mid-message)
       and resume. *)
    let cur = server.Osim.Server.proc.Osim.Process.cur_msg in
    let ck =
      match
        Osim.Checkpoint.before_message server.Osim.Server.ring ~msg_index:cur
      with
      | Some ck -> ck
      | None -> Option.get (Osim.Checkpoint.oldest server.Osim.Server.ring)
    in
    ignore (Recovery.recover server ck ~skip:[ cur ]);
    `Blocked_by_vsef d
