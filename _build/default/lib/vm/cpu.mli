(** The CPU interpreter with dynamic instrumentation.

    Execution is two-phase: each step first {e computes} the full effect
    record of the current instruction (operand values, memory addresses,
    would-be writes, control destination, even the fault it is about to
    raise) without touching machine state, then presents it to the
    registered pre-hooks, and only then commits. This is what lets a VSEF
    veto a single store or control transfer before the corruption happens —
    the analogue of attaching PIN instrumentation to a running process. *)

type hook = Event.effect_ -> unit

type hooks

type t = {
  regs : int array;
  mutable pc : int;
  mutable flags : int * int;  (** operands of the last [Cmp] *)
  mem : Memory.t;
  code : (int, Isa.instr) Hashtbl.t;
  layout : Layout.t;
  mutable sys_handler : t -> Event.effect_ -> int -> unit;
      (** OS services; fills [e_sys] of the effect it is given *)
  mutable halted : bool;
  mutable icount : int;  (** dynamic instructions executed *)
  hooks : hooks;
}

type outcome =
  | Halted
  | Blocked  (** a syscall would block; re-run when input is available *)
  | Faulted of Event.fault
  | Out_of_fuel

val create :
  mem:Memory.t -> layout:Layout.t -> code:(int, Isa.instr) Hashtbl.t -> t

val get_reg : t -> Isa.reg -> int
val set_reg : t -> Isa.reg -> int -> unit

(** Opaque handle for removing an installed hook. *)
type hook_id

val add_pre_hook : t -> hook -> hook_id
(** Hook every instruction, before state commit. *)

val add_post_hook : t -> hook -> hook_id
(** Hook every instruction, after commit (syscall effects visible). *)

val add_pc_hook : t -> pc:int -> hook -> hook_id
(** Pre-commit hook firing only at [pc] — the cheap, targeted
    instrumentation VSEFs are made of. *)

val add_pc_post_hook : t -> pc:int -> hook -> hook_id
(** Post-commit hook at one [pc] — for observing a syscall's result. *)

val remove_hook : t -> hook_id -> unit

val pc_hook_count : t -> int
(** Per-pc pre-hooks currently installed (the VSEF footprint). *)

val step : t -> Event.effect_
(** Execute one instruction. Raises [Event.Fault] on machine faults (state
    unchanged, pc at the faulting instruction), [Event.Blocked] when a
    syscall would block, and propagates exceptions raised by hooks
    (detections) before commit. *)

val run : ?fuel:int -> t -> outcome
(** Run until halt, fault, block, or [fuel] instructions. Fault state is
    preserved so the core-dump analyzer can inspect it. *)

(** Register-file snapshots (memory snapshots live in {!Memory}; the OS
    layer combines both into checkpoints). *)
type reg_snapshot

val snapshot_regs : t -> reg_snapshot
val restore_regs : t -> reg_snapshot -> unit
