(** System call numbers, shared between the code generator (which emits
    [Syscall n]) and the OS layer (which implements them).

    Conventions: arguments in [r0]..[r3], result (if any) in [r0].
    - [sys_exit]: r0 = exit code.
    - [sys_recv]: r0 = buffer, r1 = max length; returns bytes read.
    - [sys_send]: r0 = buffer, r1 = length.
    - [sys_malloc]: r0 = size; returns user pointer, 0 on exhaustion.
    - [sys_free]: r0 = user pointer.
    - [sys_log]: r0 = NUL-terminated string.
    - [sys_exec]: r0 = command string — arbitrary code execution, the
      infection event every exploit is trying to reach.
    - [sys_random]: returns a pseudo-random word (logged for replay).
    - [sys_time]: returns a logical clock value (logged for replay). *)

let sys_exit = 0
let sys_recv = 1
let sys_send = 2
let sys_malloc = 3
let sys_free = 4
let sys_log = 5
let sys_exec = 6
let sys_random = 7
let sys_time = 8

let name = function
  | 0 -> "exit"
  | 1 -> "recv"
  | 2 -> "send"
  | 3 -> "malloc"
  | 4 -> "free"
  | 5 -> "log"
  | 6 -> "exec"
  | 7 -> "random"
  | 8 -> "time"
  | n -> Printf.sprintf "sys%d" n
