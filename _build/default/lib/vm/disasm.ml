(** Pretty-printing of instructions and addresses, for analysis reports. *)

let operand_to_string = function
  | Isa.Imm v -> Printf.sprintf "0x%x" (Isa.to_u32 v)
  | Isa.Reg r -> Isa.reg_name r
  | Isa.Sym s -> "$" ^ s

let target_to_string = function
  | Isa.Addr a -> Printf.sprintf "0x%x" a
  | Isa.Lbl l -> "$" ^ l

let instr_to_string (i : Isa.instr) =
  let rn = Isa.reg_name in
  let op = operand_to_string in
  let tg = target_to_string in
  match i with
  | Mov (r, o) -> Printf.sprintf "mov %s, %s" (rn r) (op o)
  | Bin (b, r, o) -> Printf.sprintf "%s %s, %s" (Isa.binop_name b) (rn r) (op o)
  | Not r -> Printf.sprintf "not %s" (rn r)
  | Neg r -> Printf.sprintf "neg %s" (rn r)
  | Load (rd, rs, off) -> Printf.sprintf "ld %s, [%s%+d]" (rn rd) (rn rs) off
  | Loadb (rd, rs, off) -> Printf.sprintf "ldb %s, [%s%+d]" (rn rd) (rn rs) off
  | Store (rb, off, rs) -> Printf.sprintf "st [%s%+d], %s" (rn rb) off (rn rs)
  | Storeb (rb, off, rs) -> Printf.sprintf "stb [%s%+d], %s" (rn rb) off (rn rs)
  | Push o -> Printf.sprintf "push %s" (op o)
  | Pop r -> Printf.sprintf "pop %s" (rn r)
  | Cmp (r, o) -> Printf.sprintf "cmp %s, %s" (rn r) (op o)
  | Jmp t -> Printf.sprintf "jmp %s" (tg t)
  | Jcc (c, t) -> Printf.sprintf "j%s %s" (Isa.cond_name c) (tg t)
  | Call t -> Printf.sprintf "call %s" (tg t)
  | CallInd r -> Printf.sprintf "call *%s" (rn r)
  | Ret -> "ret"
  | Syscall n -> Printf.sprintf "syscall %d" n
  | Halt -> "halt"
  | Nop -> "nop"

(** "0x4f0f0907 (strcat+0x1c)" — attribute an address to a symbol using the
    loaded images' symbol tables. *)
let addr_to_string ?images addr =
  let sym =
    match images with
    | None -> None
    | Some imgs ->
      List.find_map
        (fun img ->
          if addr >= img.Asm.base && addr < img.Asm.limit then
            Asm.symbolize img addr
          else None)
        imgs
  in
  match sym with
  | Some (name, 0) -> Printf.sprintf "0x%x (%s)" addr name
  | Some (name, off) -> Printf.sprintf "0x%x (%s+0x%x)" addr name off
  | None -> Printf.sprintf "0x%x" addr
