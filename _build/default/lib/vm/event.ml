(** Execution events: the per-instruction effect records that instrumentation
    hooks observe, and the machine faults that lightweight monitoring turns
    into attack detections.

    Every analysis in Sweeper — memory-bug detection, taint tracking,
    backward slicing, VSEF filters — consumes exactly these records, which
    is the moral equivalent of the paper's PIN instrumentation API. *)

(** One memory access performed by an instruction. *)
type access = {
  a_addr : int;
  a_size : int;  (** 1 or 4 bytes *)
  a_value : int;
}

(** Where control goes after the instruction. *)
type ctrl =
  | Next
  | Jump of int
  | Call_to of { target : int; ret : int }
  | Ret_to of int
  | Sys of int
  | Stop

(** Side effects of a syscall, reported by the OS layer so that analyses can
    see I/O (taint sources, allocation events, infection attempts). *)
type sys_io =
  | Io_none
  | Io_recv of { buf : int; len : int; msg_id : int }
      (** [len] network bytes of message [msg_id] written at [buf] *)
  | Io_send of { buf : int; len : int }
  | Io_alloc of { ptr : int; size : int }
  | Io_free of { ptr : int; status : [ `Ok | `Double_free | `Bad_pointer ] }
  | Io_exec of { cmd : string }  (** arbitrary code execution — infection *)
  | Io_exit of int
  | Io_other of string

(** Machine faults. These are what address-space randomization converts an
    exploit attempt into, and hence what the lightweight monitor sees. *)
type fault =
  | Segv_read of int   (** load from an unmapped/unreadable address *)
  | Segv_write of int  (** store to an unmapped/unwritable address *)
  | Exec_violation of int
      (** control transfer to a non-code address (smashed return address,
          corrupted function pointer) *)
  | Div_zero

(** The effect record for one executed instruction. Pre-hooks observe it
    {e before} the machine state is updated (so a filter can veto the
    instruction); post-hooks observe it afterwards, with [e_sys] filled in
    for syscalls. *)
type effect_ = {
  e_seq : int;  (** dynamic instruction number *)
  e_pc : int;
  e_instr : Isa.instr;
  e_regs_read : Isa.reg list;
  e_regs_written : (Isa.reg * int) list;  (** with the values being written *)
  e_mem_reads : access list;
  e_mem_writes : access list;
  e_flags_read : bool;
  e_flags_written : bool;
  e_ctrl : ctrl;
  mutable e_sys : sys_io;
  mutable e_fault : fault option;
      (** the fault this instruction is about to raise. Pre-hooks see it
          before it happens — a VSEF can veto the very instruction that
          would have crashed — and commit raises it without mutating any
          state. *)
}

exception Fault of fault

(** Raised by the OS layer when a syscall cannot complete yet (e.g. [recv]
    with no pending input); the CPU run loop yields without advancing. *)
exception Blocked

let fault_to_string = function
  | Segv_read a -> Printf.sprintf "SIGSEGV (read 0x%x)" a
  | Segv_write a -> Printf.sprintf "SIGSEGV (write 0x%x)" a
  | Exec_violation a -> Printf.sprintf "SIGSEGV (exec 0x%x)" a
  | Div_zero -> "SIGFPE (division by zero)"

let pp_fault fmt f = Format.pp_print_string fmt (fault_to_string f)
