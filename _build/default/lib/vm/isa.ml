(** Instruction set of the simulated machine.

    The machine is a small 32-bit load/store architecture with a real,
    in-memory call stack: [Call] pushes the return address into stack memory
    and [Ret] pops it back, so a buffer overflow that reaches the saved
    return-address slot genuinely hijacks control flow — the property every
    Sweeper analysis depends on.

    Instructions occupy {!instr_size} bytes of address space each, so code
    addresses look and behave like the byte addresses the paper reports
    (e.g. the faulting store "0x4f0f0907 in strcat"). *)

(** General-purpose registers. [SP] and [FP] take part in the normal
    register file; the calling convention (see {!Minic.Codegen}) gives them
    their stack/frame roles. *)
type reg =
  | R0  (** return value / first scratch *)
  | R1
  | R2
  | R3
  | R4
  | R5
  | R6
  | R7
  | R8
  | R9
  | SP  (** stack pointer (grows towards lower addresses) *)
  | FP  (** frame pointer *)

let reg_index = function
  | R0 -> 0 | R1 -> 1 | R2 -> 2 | R3 -> 3 | R4 -> 4 | R5 -> 5
  | R6 -> 6 | R7 -> 7 | R8 -> 8 | R9 -> 9 | SP -> 10 | FP -> 11

let num_regs = 12

let reg_of_index = function
  | 0 -> R0 | 1 -> R1 | 2 -> R2 | 3 -> R3 | 4 -> R4 | 5 -> R5
  | 6 -> R6 | 7 -> R7 | 8 -> R8 | 9 -> R9 | 10 -> SP | 11 -> FP
  | n -> invalid_arg (Printf.sprintf "Isa.reg_of_index: %d" n)

let reg_name = function
  | R0 -> "r0" | R1 -> "r1" | R2 -> "r2" | R3 -> "r3" | R4 -> "r4"
  | R5 -> "r5" | R6 -> "r6" | R7 -> "r7" | R8 -> "r8" | R9 -> "r9"
  | SP -> "sp" | FP -> "fp"

(** Right-hand operands: an immediate, a register, or a symbol whose address
    is resolved when the unit is loaded (symbols are how position-independent
    code units survive address-space randomization). *)
type operand =
  | Imm of int
  | Reg of reg
  | Sym of string

(** Branch/call targets. [Lbl] targets are resolved to absolute addresses at
    load time. *)
type target =
  | Addr of int
  | Lbl of string

(** Conditions evaluated against the flags set by the last [Cmp]. Unsigned
    variants exist because address comparisons in the runtime need them. *)
type cond =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Ult
  | Uge

type binop = Add | Sub | Mul | Div | Mod | And | Or | Xor | Shl | Shr

(** The instruction set. Loads and stores exist in word (4-byte) and byte
    granularity; byte stores are what string routines use, which is why a
    string overflow corrupts adjacent memory one byte at a time exactly as
    on real hardware. *)
type instr =
  | Mov of reg * operand               (** rd := op *)
  | Bin of binop * reg * operand       (** rd := rd <op> src *)
  | Not of reg
  | Neg of reg
  | Load of reg * reg * int            (** rd := mem32[rs + off] *)
  | Loadb of reg * reg * int           (** rd := mem8[rs + off] (zero-extended) *)
  | Store of reg * int * reg           (** mem32[rbase + off] := rs *)
  | Storeb of reg * int * reg          (** mem8[rbase + off] := rs & 0xff *)
  | Push of operand                    (** sp -= 4; mem32[sp] := op *)
  | Pop of reg                         (** rd := mem32[sp]; sp += 4 *)
  | Cmp of reg * operand               (** set flags from rd - op *)
  | Jmp of target
  | Jcc of cond * target
  | Call of target                     (** push return address; jump *)
  | CallInd of reg                     (** indirect call through register *)
  | Ret                                (** pop return address from the stack *)
  | Syscall of int                     (** service request; args in r0..r3 *)
  | Halt
  | Nop

(** Each instruction occupies this many bytes of code address space. *)
let instr_size = 4

let cond_name = function
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le"
  | Gt -> "gt" | Ge -> "ge" | Ult -> "ult" | Uge -> "uge"

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Mod -> "mod"
  | And -> "and" | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Shr -> "shr"

(* 32-bit arithmetic helpers shared by the interpreter and the analyses. *)

let word_mask = 0xFFFFFFFF

(** Truncate to an unsigned 32-bit value. *)
let to_u32 v = v land word_mask

(** Sign-extend a 32-bit value to an OCaml int. *)
let to_s32 v =
  let v = v land word_mask in
  if v land 0x80000000 <> 0 then v - 0x100000000 else v

(** Evaluate a binary operation with 32-bit wrap-around semantics.
    Division and modulus by zero raise [Division_by_zero] so the CPU can
    turn them into machine faults. *)
let eval_binop op a b =
  let a32 = to_s32 a and b32 = to_s32 b in
  let r =
    match op with
    | Add -> a32 + b32
    | Sub -> a32 - b32
    | Mul -> a32 * b32
    | Div -> if b32 = 0 then raise Division_by_zero else a32 / b32
    | Mod -> if b32 = 0 then raise Division_by_zero else a32 mod b32
    | And -> a32 land b32
    | Or -> a32 lor b32
    | Xor -> a32 lxor b32
    | Shl -> a32 lsl (b32 land 31)
    | Shr -> to_u32 a32 lsr (b32 land 31)
  in
  to_u32 r

(** Evaluate a condition against the two operands of the last [Cmp]. *)
let eval_cond c a b =
  let sa = to_s32 a and sb = to_s32 b in
  let ua = to_u32 a and ub = to_u32 b in
  match c with
  | Eq -> sa = sb
  | Ne -> sa <> sb
  | Lt -> sa < sb
  | Le -> sa <= sb
  | Gt -> sa > sb
  | Ge -> sa >= sb
  | Ult -> ua < ub
  | Uge -> ua >= ub
