(** The CPU interpreter with dynamic instrumentation.

    Execution is two-phase: each step first {e computes} the full effect
    record of the current instruction (operand values, memory addresses,
    would-be writes, control destination) without touching machine state,
    then presents it to the registered pre-hooks, and only then commits.
    This is what lets a VSEF veto a single store or control transfer before
    the corruption happens, and is the analogue of attaching PIN
    instrumentation to a running process. *)

type hook = Event.effect_ -> unit

type hooks = {
  mutable pre_all : (int * hook) list;
  mutable post_all : (int * hook) list;
  pre_at : (int, (int * hook) list) Hashtbl.t;   (** keyed by pc *)
  post_at : (int, (int * hook) list) Hashtbl.t;  (** keyed by pc *)
  mutable next_id : int;
}

type t = {
  regs : int array;
  mutable pc : int;
  mutable flags : int * int;  (** operands of the last [Cmp] *)
  mem : Memory.t;
  code : (int, Isa.instr) Hashtbl.t;
  layout : Layout.t;
  mutable sys_handler : t -> Event.effect_ -> int -> unit;
      (** OS services; fills [e_sys] of the effect it is given *)
  mutable halted : bool;
  mutable icount : int;  (** dynamic instructions executed *)
  hooks : hooks;
}

type outcome =
  | Halted
  | Blocked  (** a syscall would block; re-run when input is available *)
  | Faulted of Event.fault
  | Out_of_fuel

let create ~mem ~layout ~code =
  {
    regs = Array.make Isa.num_regs 0;
    pc = 0;
    flags = (0, 0);
    mem;
    code;
    layout;
    sys_handler = (fun _ _ _ -> ());
    halted = false;
    icount = 0;
    hooks =
      { pre_all = []; post_all = []; pre_at = Hashtbl.create 16;
        post_at = Hashtbl.create 16; next_id = 0 };
  }

let get_reg cpu r = cpu.regs.(Isa.reg_index r)
let set_reg cpu r v = cpu.regs.(Isa.reg_index r) <- Isa.to_u32 v

(* ------------------------------------------------------------------ *)
(* Instrumentation hook management                                     *)
(* ------------------------------------------------------------------ *)

type hook_id =
  | Pre of int
  | Post of int
  | Pre_pc of int * int
  | Post_pc of int * int

(** Register a hook on every instruction, before state commit. *)
let add_pre_hook cpu f =
  let id = cpu.hooks.next_id in
  cpu.hooks.next_id <- id + 1;
  cpu.hooks.pre_all <- (id, f) :: cpu.hooks.pre_all;
  Pre id

(** Register a hook on every instruction, after state commit (syscall
    effects are visible here). *)
let add_post_hook cpu f =
  let id = cpu.hooks.next_id in
  cpu.hooks.next_id <- id + 1;
  cpu.hooks.post_all <- (id, f) :: cpu.hooks.post_all;
  Post id

(** Register a pre-hook that fires only at [pc] — the cheap, targeted
    instrumentation VSEFs are made of. *)
let add_pc_hook cpu ~pc f =
  let id = cpu.hooks.next_id in
  cpu.hooks.next_id <- id + 1;
  let existing = Option.value ~default:[] (Hashtbl.find_opt cpu.hooks.pre_at pc) in
  Hashtbl.replace cpu.hooks.pre_at pc ((id, f) :: existing);
  Pre_pc (pc, id)

(** Register a post-commit hook that fires only at [pc] — used by VSEFs
    that must observe a syscall's result (e.g. allocation tracking). *)
let add_pc_post_hook cpu ~pc f =
  let id = cpu.hooks.next_id in
  cpu.hooks.next_id <- id + 1;
  let existing =
    Option.value ~default:[] (Hashtbl.find_opt cpu.hooks.post_at pc)
  in
  Hashtbl.replace cpu.hooks.post_at pc ((id, f) :: existing);
  Post_pc (pc, id)

let remove_from_table tbl pc id =
  match Hashtbl.find_opt tbl pc with
  | None -> ()
  | Some l -> (
    match List.filter (fun (i, _) -> i <> id) l with
    | [] -> Hashtbl.remove tbl pc
    | l' -> Hashtbl.replace tbl pc l')

let remove_hook cpu = function
  | Pre id -> cpu.hooks.pre_all <- List.filter (fun (i, _) -> i <> id) cpu.hooks.pre_all
  | Post id ->
    cpu.hooks.post_all <- List.filter (fun (i, _) -> i <> id) cpu.hooks.post_all
  | Pre_pc (pc, id) -> remove_from_table cpu.hooks.pre_at pc id
  | Post_pc (pc, id) -> remove_from_table cpu.hooks.post_at pc id

(** Total number of per-pc hooks currently installed (VSEF footprint). *)
let pc_hook_count cpu =
  Hashtbl.fold (fun _ l acc -> acc + List.length l) cpu.hooks.pre_at 0

(* ------------------------------------------------------------------ *)
(* Step                                                                *)
(* ------------------------------------------------------------------ *)

let operand_value cpu = function
  | Isa.Imm v -> Isa.to_u32 v
  | Isa.Reg r -> get_reg cpu r
  | Isa.Sym s -> invalid_arg ("Cpu: unresolved symbol " ^ s)

let operand_regs = function
  | Isa.Reg r -> [ r ]
  | Isa.Imm _ | Isa.Sym _ -> []

let fetch cpu pc =
  match Hashtbl.find_opt cpu.code pc with
  | Some i -> i
  | None -> raise (Event.Fault (Event.Exec_violation pc))

(* Compute the effect of [instr] at the current state, without mutating.
   Invalid accesses and invalid control targets are recorded in [e_fault]
   (first one wins) rather than raised, so that pre-hooks — in particular
   VSEFs installed at the very instruction that would crash — get to see
   and veto the instruction; {!commit} raises the fault. *)
let compute_effect cpu instr : Event.effect_ =
  let open Isa in
  let open Event in
  let pc = cpu.pc in
  let pending_fault = ref None in
  let note_fault f = if !pending_fault = None then pending_fault := Some f in
  let mk ?(rr = []) ?(rw = []) ?(mr = []) ?(mw = []) ?(fr = false) ?(fw = false)
      ?(ctrl = Next) () =
    {
      e_seq = cpu.icount;
      e_pc = pc;
      e_instr = instr;
      e_regs_read = rr;
      e_regs_written = rw;
      e_mem_reads = mr;
      e_mem_writes = mw;
      e_flags_read = fr;
      e_flags_written = fw;
      e_ctrl = ctrl;
      e_sys = Io_none;
      e_fault = !pending_fault;
    }
  in
  let read_word addr =
    if not (Layout.valid_data cpu.layout addr) then begin
      note_fault (Segv_read addr);
      { a_addr = addr; a_size = 4; a_value = 0 }
    end
    else { a_addr = addr; a_size = 4; a_value = Memory.load_word cpu.mem addr }
  in
  let read_byte addr =
    if not (Layout.valid_data cpu.layout addr) then begin
      note_fault (Segv_read addr);
      { a_addr = addr; a_size = 1; a_value = 0 }
    end
    else { a_addr = addr; a_size = 1; a_value = Memory.load_byte cpu.mem addr }
  in
  let write_word addr v =
    if not (Layout.valid_data cpu.layout addr) then note_fault (Segv_write addr);
    { a_addr = addr; a_size = 4; a_value = Isa.to_u32 v }
  in
  let write_byte addr v =
    if not (Layout.valid_data cpu.layout addr) then note_fault (Segv_write addr);
    { a_addr = addr; a_size = 1; a_value = v land 0xff }
  in
  let check_exec_target addr =
    if not (Layout.valid_code cpu.layout addr) then
      note_fault (Exec_violation addr)
  in
  match instr with
  | Mov (rd, op) ->
    mk ~rr:(operand_regs op) ~rw:[ (rd, operand_value cpu op) ] ()
  | Bin (op, rd, src) ->
    let v =
      try eval_binop op (get_reg cpu rd) (operand_value cpu src)
      with Division_by_zero ->
        note_fault Div_zero;
        0
    in
    mk ~rr:(rd :: operand_regs src) ~rw:[ (rd, v) ] ()
  | Not rd -> mk ~rr:[ rd ] ~rw:[ (rd, Isa.to_u32 (lnot (get_reg cpu rd))) ] ()
  | Neg rd -> mk ~rr:[ rd ] ~rw:[ (rd, Isa.to_u32 (-get_reg cpu rd)) ] ()
  | Load (rd, rs, off) ->
    let acc = read_word (Isa.to_u32 (get_reg cpu rs + off)) in
    mk ~rr:[ rs ] ~rw:[ (rd, acc.a_value) ] ~mr:[ acc ] ()
  | Loadb (rd, rs, off) ->
    let acc = read_byte (Isa.to_u32 (get_reg cpu rs + off)) in
    mk ~rr:[ rs ] ~rw:[ (rd, acc.a_value) ] ~mr:[ acc ] ()
  | Store (rbase, off, rs) ->
    let acc = write_word (Isa.to_u32 (get_reg cpu rbase + off)) (get_reg cpu rs) in
    mk ~rr:[ rbase; rs ] ~mw:[ acc ] ()
  | Storeb (rbase, off, rs) ->
    let acc = write_byte (Isa.to_u32 (get_reg cpu rbase + off)) (get_reg cpu rs) in
    mk ~rr:[ rbase; rs ] ~mw:[ acc ] ()
  | Push op ->
    let sp' = Isa.to_u32 (get_reg cpu SP - 4) in
    let acc = write_word sp' (operand_value cpu op) in
    mk ~rr:(SP :: operand_regs op) ~rw:[ (SP, sp') ] ~mw:[ acc ] ()
  | Pop rd ->
    let sp = get_reg cpu SP in
    let acc = read_word sp in
    mk ~rr:[ SP ] ~rw:[ (rd, acc.a_value); (SP, Isa.to_u32 (sp + 4)) ] ~mr:[ acc ] ()
  | Cmp (r, op) -> mk ~rr:(r :: operand_regs op) ~fw:true ()
  | Jmp (Addr a) -> mk ~ctrl:(Jump a) ()
  | Jcc (c, Addr a) ->
    let x, y = cpu.flags in
    let taken = eval_cond c x y in
    mk ~fr:true ~ctrl:(if taken then Jump a else Next) ()
  | Call (Addr a) ->
    let sp' = Isa.to_u32 (get_reg cpu SP - 4) in
    let ret = pc + Isa.instr_size in
    let acc = write_word sp' ret in
    mk ~rr:[ SP ] ~rw:[ (SP, sp') ] ~mw:[ acc ]
      ~ctrl:(Call_to { target = a; ret }) ()
  | CallInd r ->
    let target = get_reg cpu r in
    check_exec_target target;
    let sp' = Isa.to_u32 (get_reg cpu SP - 4) in
    let ret = pc + Isa.instr_size in
    let acc = write_word sp' ret in
    mk ~rr:[ r; SP ] ~rw:[ (SP, sp') ] ~mw:[ acc ]
      ~ctrl:(Call_to { target; ret }) ()
  | Ret ->
    let sp = get_reg cpu SP in
    let acc = read_word sp in
    check_exec_target acc.a_value;
    mk ~rr:[ SP ] ~rw:[ (SP, Isa.to_u32 (sp + 4)) ] ~mr:[ acc ]
      ~ctrl:(Ret_to acc.a_value) ()
  | Syscall n -> mk ~rr:[ R0; R1; R2; R3 ] ~ctrl:(Sys n) ()
  | Halt -> mk ~ctrl:Stop ()
  | Nop -> mk ()
  | Jmp (Lbl s) | Jcc (_, Lbl s) | Call (Lbl s) ->
    invalid_arg ("Cpu: unresolved label " ^ s)

let run_hooks hooks eff =
  (* Hooks registered earlier run first. *)
  List.iter (fun (_, f) -> f eff) (List.rev hooks)

(* Commit an effect: apply register writes, memory writes, pc update.
   A pending fault is raised first, before any state changes. *)
let commit cpu (eff : Event.effect_) =
  (match eff.e_fault with
  | Some f -> raise (Event.Fault f)
  | None -> ());
  List.iter
    (fun (a : Event.access) ->
      if a.a_size = 4 then Memory.store_word cpu.mem a.a_addr a.a_value
      else Memory.store_byte cpu.mem a.a_addr a.a_value)
    eff.e_mem_writes;
  List.iter (fun (r, v) -> set_reg cpu r v) eff.e_regs_written;
  if eff.e_flags_written then begin
    match eff.e_instr with
    | Isa.Cmp (r, op) ->
      (* Flag semantics: record the compared values. The register write
         above cannot alias these (Cmp writes no registers). *)
      cpu.flags <- (get_reg cpu r, operand_value cpu op)
    | _ -> ()
  end;
  match eff.e_ctrl with
  | Next -> cpu.pc <- cpu.pc + Isa.instr_size
  | Jump a | Ret_to a -> cpu.pc <- a
  | Call_to { target; _ } -> cpu.pc <- target
  | Sys n ->
    cpu.sys_handler cpu eff n;
    cpu.pc <- cpu.pc + Isa.instr_size
  | Stop -> cpu.halted <- true

(** Execute one instruction. Returns the committed effect. Raises
    [Event.Fault] on machine faults, [Event.Blocked] when a syscall would
    block (state unchanged, pc still at the syscall), and propagates any
    exception raised by a hook (detections) before commit. *)
let step cpu =
  let pc = cpu.pc in
  let instr = fetch cpu pc in
  let eff = compute_effect cpu instr in
  (match Hashtbl.find_opt cpu.hooks.pre_at pc with
  | Some hs -> run_hooks hs eff
  | None -> ());
  run_hooks cpu.hooks.pre_all eff;
  commit cpu eff;
  cpu.icount <- cpu.icount + 1;
  (match Hashtbl.find_opt cpu.hooks.post_at pc with
  | Some hs -> run_hooks hs eff
  | None -> ());
  run_hooks cpu.hooks.post_all eff;
  eff

(** Run until halt, fault, block, or [fuel] instructions. Fault state is
    preserved (pc stays at the faulting instruction) so the core-dump
    analyzer can inspect it. *)
let run ?(fuel = max_int) cpu =
  let rec go n =
    if cpu.halted then Halted
    else if n <= 0 then Out_of_fuel
    else
      match step cpu with
      | _ -> go (n - 1)
      | exception Event.Fault f -> Faulted f
      | exception Event.Blocked -> Blocked
  in
  go fuel

(* ------------------------------------------------------------------ *)
(* Snapshot/restore of CPU register state (memory snapshots live in     *)
(* Memory; the OS layer combines both into checkpoints).                *)
(* ------------------------------------------------------------------ *)

type reg_snapshot = {
  s_regs : int array;
  s_pc : int;
  s_flags : int * int;
  s_halted : bool;
  s_icount : int;
}

let snapshot_regs cpu =
  {
    s_regs = Array.copy cpu.regs;
    s_pc = cpu.pc;
    s_flags = cpu.flags;
    s_halted = cpu.halted;
    s_icount = cpu.icount;
  }

let restore_regs cpu s =
  Array.blit s.s_regs 0 cpu.regs 0 Isa.num_regs;
  cpu.pc <- s.s_pc;
  cpu.flags <- s.s_flags;
  cpu.halted <- s.s_halted;
  cpu.icount <- s.s_icount
