(** Heap allocator with inline metadata, in the style of classic dlmalloc.

    All allocator state — chunk headers, the free list, and the bump cursor —
    lives {e inside VM memory}, so it is captured by checkpoints and restored
    by rollback for free, and so a heap buffer overflow corrupts real
    metadata that the core-dump analyzer can later find inconsistent
    (the "modified red-zone technique — use malloc()'s own inline data
    structures" of Section 3.2).

    Chunk layout: [size:4][magic:4][user bytes...]. Free chunks reuse the
    first user word as the free-list link. Bookkeeping words live at the
    start of the heap region: free-list head at [heap_base], bump cursor at
    [heap_base+4]. *)

let magic_alloc = 0x000A110C
let magic_freed = 0x000F4EED
let header_size = 8

let free_head_addr layout = layout.Layout.heap_base
let cursor_addr layout = layout.Layout.heap_base + 4

(** First address usable for chunks. *)
let arena_start layout = layout.Layout.heap_base + 16

(** Prepare the bookkeeping words. Must be called once per process, after
    the layout's heap pages are mappable. *)
let init mem layout =
  ignore (Layout.grow_heap layout (arena_start layout));
  Memory.store_word mem (free_head_addr layout) 0;
  Memory.store_word mem (cursor_addr layout) (arena_start layout)

let round_size n = if n <= 0 then 8 else (n + 7) land lnot 7

(** Allocate [n] user bytes; returns the user pointer, or [None] when the
    heap arena is exhausted. First-fit over the free list, bump allocation
    otherwise. *)
let malloc mem layout n =
  let n = round_size n in
  (* First-fit scan of the free list (links are chunk header addresses). *)
  let rec scan prev hdr =
    if hdr = 0 then None
    else
      let size = Memory.load_word mem hdr in
      let next = Memory.load_word mem (hdr + header_size) in
      if size >= n then begin
        (match prev with
        | None -> Memory.store_word mem (free_head_addr layout) next
        | Some p -> Memory.store_word mem (p + header_size) next);
        Memory.store_word mem (hdr + 4) magic_alloc;
        Some (hdr + header_size)
      end
      else scan (Some hdr) next
  in
  match scan None (Memory.load_word mem (free_head_addr layout)) with
  | Some ptr -> Some ptr
  | None ->
    let hdr = Memory.load_word mem (cursor_addr layout) in
    let limit = hdr + header_size + n in
    if not (Layout.grow_heap layout limit) then None
    else begin
      Memory.store_word mem hdr n;
      Memory.store_word mem (hdr + 4) magic_alloc;
      Memory.store_word mem (cursor_addr layout) limit;
      Some (hdr + header_size)
    end

(** Release a user pointer. Reports — but tolerates — double frees and
    wild pointers: the simulator must survive them so that Sweeper, not the
    substrate, is what detects the bug. *)
let free mem layout ptr =
  let hdr = ptr - header_size in
  if ptr < arena_start layout || ptr >= layout.Layout.heap_brk then `Bad_pointer
  else
    let magic = Memory.load_word mem (hdr + 4) in
    if magic = magic_freed then `Double_free
    else if magic <> magic_alloc then `Bad_pointer
    else begin
      Memory.store_word mem (hdr + 4) magic_freed;
      Memory.store_word mem (hdr + header_size)
        (Memory.load_word mem (free_head_addr layout));
      Memory.store_word mem (free_head_addr layout) hdr;
      `Ok
    end

type chunk_state = Chunk_alloc | Chunk_freed | Chunk_corrupt of int

type chunk = {
  c_ptr : int;   (** user pointer *)
  c_size : int;
  c_state : chunk_state;
}

(** Walk the heap chunk by chunk, exactly as the core-dump analyzer does.
    Stops at the first corrupt header (after reporting it), since size
    fields beyond it cannot be trusted. *)
let chunks mem layout =
  let cursor = Memory.load_word mem (cursor_addr layout) in
  let rec go acc hdr =
    if hdr >= cursor then List.rev acc
    else
      let size = Memory.load_word mem hdr in
      let magic = Memory.load_word mem (hdr + 4) in
      let user = hdr + header_size in
      if magic = magic_alloc then
        go ({ c_ptr = user; c_size = size; c_state = Chunk_alloc } :: acc)
          (user + size)
      else if magic = magic_freed then
        go ({ c_ptr = user; c_size = size; c_state = Chunk_freed } :: acc)
          (user + size)
      else
        List.rev
          ({ c_ptr = user; c_size = size; c_state = Chunk_corrupt magic } :: acc)
  in
  go [] (arena_start layout)

(** [true] when every chunk header in the heap is intact. *)
let heap_consistent mem layout =
  List.for_all
    (fun c -> match c.c_state with Chunk_corrupt _ -> false | _ -> true)
    (chunks mem layout)
