(** Heap allocator with inline metadata, in the style of classic dlmalloc.

    All allocator state — chunk headers, the free list, the bump cursor —
    lives {e inside VM memory}, so checkpoints capture it and rollback
    restores it for free, and a heap buffer overflow corrupts real metadata
    the core-dump analyzer can later find inconsistent (the paper's
    "modified red-zone technique — use malloc()'s own inline data
    structures").

    Chunk layout: [size:4][magic:4][user bytes...]; free chunks reuse the
    first user word as the free-list link. *)

val magic_alloc : int
val magic_freed : int
val header_size : int

val arena_start : Layout.t -> int
(** First address usable for chunks (after the bookkeeping words). *)

val init : Memory.t -> Layout.t -> unit
(** Prepare the bookkeeping words. Call once per process. *)

val round_size : int -> int

val malloc : Memory.t -> Layout.t -> int -> int option
(** Allocate; returns the user pointer, or [None] on arena exhaustion.
    First-fit over the free list, bump allocation otherwise. *)

val free : Memory.t -> Layout.t -> int -> [ `Ok | `Double_free | `Bad_pointer ]
(** Release a user pointer. Reports — but tolerates — double frees and
    wild pointers: the simulator must survive them so that Sweeper, not the
    substrate, detects the bug. *)

type chunk_state = Chunk_alloc | Chunk_freed | Chunk_corrupt of int

type chunk = {
  c_ptr : int;  (** user pointer *)
  c_size : int;
  c_state : chunk_state;
}

val chunks : Memory.t -> Layout.t -> chunk list
(** Walk the heap chunk by chunk, as the core-dump analyzer does. Stops at
    the first corrupt header (after reporting it). *)

val heap_consistent : Memory.t -> Layout.t -> bool
(** [true] when every chunk header in the heap is intact. *)
