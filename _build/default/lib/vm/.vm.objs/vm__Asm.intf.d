lib/vm/asm.mli: Hashtbl Isa
