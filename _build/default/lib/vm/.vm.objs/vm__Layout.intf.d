lib/vm/layout.mli:
