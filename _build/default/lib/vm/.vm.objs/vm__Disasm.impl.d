lib/vm/disasm.ml: Asm Isa List Printf
