lib/vm/cpu.ml: Array Event Hashtbl Isa Layout List Memory Option
