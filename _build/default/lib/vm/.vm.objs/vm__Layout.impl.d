lib/vm/layout.ml: Memory Random
