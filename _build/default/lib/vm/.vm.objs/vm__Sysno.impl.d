lib/vm/sysno.ml: Printf
