lib/vm/cpu.mli: Event Hashtbl Isa Layout Memory
