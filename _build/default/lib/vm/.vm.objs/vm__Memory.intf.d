lib/vm/memory.mli:
