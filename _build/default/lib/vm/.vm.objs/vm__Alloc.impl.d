lib/vm/alloc.ml: Layout List Memory
