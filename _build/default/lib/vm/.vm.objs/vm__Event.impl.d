lib/vm/event.ml: Format Isa Printf
