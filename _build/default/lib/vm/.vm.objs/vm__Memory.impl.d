lib/vm/memory.ml: Buffer Bytes Char Hashtbl Int32 Isa String
