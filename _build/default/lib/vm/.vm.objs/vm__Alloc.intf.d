lib/vm/alloc.mli: Layout Memory
