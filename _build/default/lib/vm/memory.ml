(** Byte-addressable paged memory with copy-on-write snapshots.

    This is the substrate for Sweeper's lightweight checkpointing: taking a
    snapshot is O(mapped pages) pointer copies, and the cost of keeping a
    snapshot alive is one page copy per page subsequently dirtied — the same
    cost model as the fork()-based shadow processes of Rx/FlashBack, which
    is what makes the checkpoint-interval/overhead curve of the paper's
    Figure 4 reproducible. *)

let page_bits = 12
let page_size = 1 lsl page_bits (* 4096 *)
let page_mask = page_size - 1

type page = {
  mutable data : Bytes.t;
  mutable epoch : int;  (** epoch in which this page copy was created *)
}

type t = {
  mutable pages : (int, page) Hashtbl.t;
  mutable cur_epoch : int;
  mutable cow_copies : int;    (** pages copied due to snapshot sharing *)
  mutable pages_mapped : int;  (** pages ever materialized *)
}

(** An immutable snapshot of the whole address space. Restoring it is a
    shallow table copy; pages stay shared until written. *)
type snapshot = {
  snap_pages : (int, page) Hashtbl.t;
  snap_epoch : int;
}

let create () =
  { pages = Hashtbl.create 256; cur_epoch = 0; cow_copies = 0; pages_mapped = 0 }

let stats mem = (mem.cow_copies, mem.pages_mapped)

let reset_stats mem =
  mem.cow_copies <- 0;
  mem.pages_mapped <- 0

let fresh_page mem =
  mem.pages_mapped <- mem.pages_mapped + 1;
  { data = Bytes.make page_size '\000'; epoch = mem.cur_epoch }

(* Fetch the page containing [addr], materializing a zero page on demand.
   Validity of the address is the CPU's concern, not the memory's. *)
let page_for_read mem addr =
  let idx = addr lsr page_bits in
  match Hashtbl.find_opt mem.pages idx with
  | Some p -> p
  | None ->
    let p = fresh_page mem in
    Hashtbl.replace mem.pages idx p;
    p

(* Fetch the page for writing, copying it first if it may be shared with a
   live snapshot (its epoch predates the current one). *)
let page_for_write mem addr =
  let idx = addr lsr page_bits in
  match Hashtbl.find_opt mem.pages idx with
  | Some p ->
    if p.epoch < mem.cur_epoch then begin
      let copy = { data = Bytes.copy p.data; epoch = mem.cur_epoch } in
      mem.cow_copies <- mem.cow_copies + 1;
      Hashtbl.replace mem.pages idx copy;
      copy
    end
    else p
  | None ->
    let p = fresh_page mem in
    Hashtbl.replace mem.pages idx p;
    p

let load_byte mem addr =
  let p = page_for_read mem addr in
  Char.code (Bytes.get p.data (addr land page_mask))

let store_byte mem addr v =
  let p = page_for_write mem addr in
  Bytes.set p.data (addr land page_mask) (Char.chr (v land 0xff))

(** Little-endian 32-bit load. Crosses page boundaries correctly. *)
let load_word mem addr =
  if addr land page_mask <= page_size - 4 then begin
    let p = page_for_read mem addr in
    let off = addr land page_mask in
    Int32.to_int (Bytes.get_int32_le p.data off) land Isa.word_mask
  end
  else
    let b0 = load_byte mem addr in
    let b1 = load_byte mem (addr + 1) in
    let b2 = load_byte mem (addr + 2) in
    let b3 = load_byte mem (addr + 3) in
    b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24)

(** Little-endian 32-bit store. *)
let store_word mem addr v =
  if addr land page_mask <= page_size - 4 then begin
    let p = page_for_write mem addr in
    let off = addr land page_mask in
    Bytes.set_int32_le p.data off (Int32.of_int (Isa.to_s32 v))
  end
  else begin
    store_byte mem addr v;
    store_byte mem (addr + 1) (v lsr 8);
    store_byte mem (addr + 2) (v lsr 16);
    store_byte mem (addr + 3) (v lsr 24)
  end

(** Read [len] bytes starting at [addr]. *)
let load_bytes mem addr len =
  String.init len (fun i -> Char.chr (load_byte mem (addr + i)))

(** Write the whole string at [addr]. *)
let store_bytes mem addr s =
  String.iteri (fun i c -> store_byte mem (addr + i) (Char.code c)) s

(** Read the NUL-terminated string at [addr], up to [limit] bytes
    (default 64 KiB) as a safety net for corrupted memory. *)
let load_cstring ?(limit = 65536) mem addr =
  let buf = Buffer.create 32 in
  let rec go i =
    if i >= limit then Buffer.contents buf
    else
      let b = load_byte mem (addr + i) in
      if b = 0 then Buffer.contents buf
      else begin
        Buffer.add_char buf (Char.chr b);
        go (i + 1)
      end
  in
  go 0

(** Take a copy-on-write snapshot. All current pages become shared; the
    next write to any of them pays one page copy. With [eager:true] every
    page is deep-copied up front instead — the full-copy baseline that the
    checkpointing ablation compares against. *)
let snapshot ?(eager = false) mem =
  mem.cur_epoch <- mem.cur_epoch + 1;
  if eager then begin
    let pages = Hashtbl.create (Hashtbl.length mem.pages) in
    Hashtbl.iter
      (fun idx p ->
        Hashtbl.replace pages idx { data = Bytes.copy p.data; epoch = p.epoch })
      mem.pages;
    { snap_pages = pages; snap_epoch = mem.cur_epoch }
  end
  else { snap_pages = Hashtbl.copy mem.pages; snap_epoch = mem.cur_epoch }

(** Restore a snapshot taken earlier on this memory. The snapshot remains
    valid and can be restored again (analysis re-executes from the same
    checkpoint repeatedly). *)
let restore mem snap =
  mem.cur_epoch <- mem.cur_epoch + 1;
  mem.pages <- Hashtbl.copy snap.snap_pages

(** Number of pages currently mapped. *)
let mapped_pages mem = Hashtbl.length mem.pages
