(** The FTP proxy cache — the Squid analogue carrying CVE-2002-0068.

    [ftp_build_title_url] sizes its buffer from the {e unescaped} user
    string but then appends the rfc1738-escaped version, which can be up to
    three times longer; [strcat] does the rest (see the paper's Figure 2).
    With a long, escape-heavy user part the append runs off the end of the
    mapped heap and faults inside library [strcat] — after having silently
    corrupted the neighbouring chunk header, which is why the core-dump
    analyzer finds the heap inconsistent. *)

let reqbuf_size = 4096

let source = {|
char reqbuf[4096];

void send_str(char *s) {
  _send(s, strlen(s));
}

char *ftp_build_title_url(char *user, char *host) {
  char *esc = rfc1738_escape_part(user);
  int len = 64 + strlen(user);       // BUG: sized from the unescaped string
  char *t = xcalloc(len, 1);
  char *meta = xcalloc(192, 1);      // request bookkeeping; sized above the
                                     // free-list leftovers so it is carved
                                     // fresh right after t — its header is
                                     // what the overflow tramples first
  if (t == 0 || esc == 0 || meta == 0) { return (char*)0; }
  strcat(t, "ftp://");
  strcat(t, esc);                    // CVE-2002-0068: unbounded append
  strcat(t, "@");
  strcat(t, host);
  free(esc);
  // meta is leaked (as request bookkeeping was, in the era) — which also
  // keeps every meta allocation fresh off the top of the heap
  return t;
}

void handle_request(char *req) {
  char user[3600];
  char host[256];
  int i;
  int j;
  char *title;
  if (strncmp(req, "GET ftp://", 10) != 0) {
    if (strncmp(req, "GET http://", 11) == 0) {
      send_str("HTTP/1.0 200 OK (cached)\n");
      return;
    }
    send_str("HTTP/1.0 400 Bad Request\n");
    return;
  }
  // ftp://user@host/path — split out user and host
  i = 10;
  j = 0;
  while (req[i] != 0 && req[i] != '@' && req[i] != '\n' && j < 3599) {
    user[j] = req[i];
    i = i + 1;
    j = j + 1;
  }
  user[j] = 0;
  if (req[i] != '@') {
    send_str("HTTP/1.0 400 Bad ftp URL\n");
    return;
  }
  i = i + 1;
  j = 0;
  while (req[i] != 0 && req[i] != '/' && req[i] != '\n' && j < 255) {
    host[j] = req[i];
    i = i + 1;
    j = j + 1;
  }
  host[j] = 0;
  title = ftp_build_title_url(user, host);
  if (title == 0) {
    send_str("HTTP/1.0 500 oom\n");
    return;
  }
  send_str("HTTP/1.0 200 OK title=");
  send_str(title);
  send_str("\n");
  free(title);
}

int main() {
  _log("proxyd: ready");
  while (1) {
    int n = _recv(reqbuf, 4096);
    if (n < 0) { _exit(1); }
    handle_request(reqbuf);
  }
  return 0;
}
|}

let compile () = Minic.Driver.compile_app ~name:"proxyd-2.3" source
