lib/apps/workload.ml: Array List Printf Random
