lib/apps/proxyd.ml: Minic
