lib/apps/registry.ml: Exploits Httpd List Minic Proxyd Vcsd Workload
