lib/apps/httpd.ml: Minic
