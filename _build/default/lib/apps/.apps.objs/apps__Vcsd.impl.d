lib/apps/vcsd.ml: Minic
