(** Benign traffic generators, one per server — deterministic streams used
    for overhead measurements (Figure 4), recovery timelines (Figure 5),
    and false-positive checks on antibodies. *)

let pick rng arr = arr.(Random.State.int rng (Array.length arr))

let paths =
  [| "/"; "/index.html"; "/status"; "/img/logo.png"; "/docs/readme";
     "/alias/ok"; "/news"; "/about"; "/contact"; "/search?q=ocaml" |]

let referers =
  [| "http://www.example.com/"; "http://news.site/page"; "ftp://mirror.org/x";
     "http://10.0.0.8/a"; "http://blog.example.net/post/7" |]

(** HTTP requests with short URIs and well-formed Referer headers. *)
let httpd ~seed n =
  let rng = Random.State.make [| seed; 0xBE19 |] in
  List.init n (fun _ ->
      Printf.sprintf "GET %s\nReferer: %s\nHost: www\n" (pick rng paths)
        (pick rng referers))

let ftp_users = [| "anonymous"; "mirror"; "backup"; "w3cache"; "fetch" |]
let ftp_hosts = [| "ftp.kernel.org"; "ftp.gnu.org"; "mirror.example.net" |]

(** Proxy requests: mostly http hits, some small well-formed ftp URLs
    (these exercise the vulnerable [ftp_build_title_url] path safely). *)
let proxyd ~seed n =
  let rng = Random.State.make [| seed; 0xF7B |] in
  List.init n (fun _ ->
      if Random.State.int rng 4 = 0 then
        Printf.sprintf "GET ftp://%s@%s/pub/file\n" (pick rng ftp_users)
          (pick rng ftp_hosts)
      else Printf.sprintf "GET http://www.example.com%s\n" (pick rng paths))

let dirs = [| "src"; "src/lib"; "doc"; "tests"; "tools/ci" |]

(** CVS-protocol sessions: directory switches, entries, noops. *)
let vcsd ~seed n =
  let rng = Random.State.make [| seed; 0xCB5 |] in
  List.init n (fun _ ->
      match Random.State.int rng 4 with
      | 0 -> "Directory " ^ pick rng dirs
      | 1 -> Printf.sprintf "Entry /%s/file%d.c" (pick rng dirs) (Random.State.int rng 100)
      | 2 -> "noop"
      | _ -> "version")
