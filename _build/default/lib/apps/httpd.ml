(** The web server, in two builds mirroring the paper's two Apache targets.

    - {!v1_source} ("Apache1", analogue of CVE-2003-0542): the alias
      matcher copies the request URI into a 64-byte stack buffer with no
      bounds check. A long URI smashes the caller's saved frame pointer and
      return address — a classic stack-smashing vulnerability. The
      overflowing store is in [lmatcher]; the corrupted return is taken in
      [try_alias_list].
    - {!v2_source} ("Apache2", analogue of CVE-2003-1054): Referer-header
      bookkeeping takes the host to start after "://"; when the header has
      no scheme the host pointer stays NULL and [is_ip] dereferences it —
      a remotely triggerable denial of service. *)

(** Size of the request buffer; also the max message size the server reads. *)
let reqbuf_size = 4096

let common_helpers = {|
char reqbuf[4096];

void send_str(char *s) {
  _send(s, strlen(s));
}
|}

let main_loop = {|
int main() {
  _log("httpd: ready");
  while (1) {
    int n = _recv(reqbuf, 4096);
    if (n < 0) { _exit(1); }
    handle_request(reqbuf);
  }
  return 0;
}
|}

let v1_source =
  common_helpers
  ^ {|
// mod_alias-style prefix matcher. Copies the URI into the caller's
// buffer while scanning — with no idea how big that buffer is.
int lmatcher(char *uri, char *out) {
  int i = 0;
  while (uri[i] != 0 && uri[i] != '\n') {
    out[i] = uri[i];            // the overflowing store
    i = i + 1;
  }
  out[i] = 0;
  return i;
}

int try_alias_list(char *uri) {
  char fakename[64];
  int n = lmatcher(uri, fakename);
  if (n >= 7 && strncmp(fakename, "/alias/", 7) == 0) {
    return 1;
  }
  return 0;
}

void handle_request(char *req) {
  char uri[4096];
  int i;
  int j;
  if (strncmp(req, "GET ", 4) != 0) {
    send_str("HTTP/1.0 400 Bad Request\n");
    return;
  }
  i = 4;
  j = 0;
  while (req[i] != 0 && req[i] != '\n') {
    uri[j] = req[i];
    i = i + 1;
    j = j + 1;
  }
  uri[j] = 0;
  if (try_alias_list(uri)) {
    send_str("HTTP/1.0 302 Found (alias)\n");
    return;
  }
  if (strncmp(uri, "/status", 7) == 0) {
    send_str("HTTP/1.0 200 OK\nserver: httpd/1.3.27 up\n");
    return;
  }
  send_str("HTTP/1.0 200 OK\nhello\n");
}
|}
  ^ main_loop

let v2_source =
  common_helpers
  ^ {|
int referral_count;

// Is the referring host a raw IP address? Dereferences its argument
// without a NULL check: the faulting load lives here.
int is_ip(char *host) {
  int i = 0;
  int digits = 1;
  while (host[i] != 0 && host[i] != '/' && host[i] != '\n') {
    if ((host[i] < '0' || host[i] > '9') && host[i] != '.') {
      digits = 0;
    }
    i = i + 1;
  }
  if (i == 0) { return 0; }
  return digits;
}

void log_referer(char *req) {
  char *ref = strstr(req, "Referer: ");
  char *host = (char*)0;
  char *scheme;
  if (ref == 0) { return; }
  ref = ref + 9;
  scheme = strstr(ref, "://");
  if (scheme != 0) {
    host = scheme + 3;
  }
  // BUG: when the Referer value has no "://", host is still NULL here.
  if (is_ip(host)) {
    referral_count = referral_count + 1;
  }
}

void handle_request(char *req) {
  if (strncmp(req, "GET ", 4) != 0) {
    send_str("HTTP/1.0 400 Bad Request\n");
    return;
  }
  log_referer(req);
  send_str("HTTP/1.0 200 OK\nhello\n");
}
|}
  ^ main_loop

let compile_v1 () = Minic.Driver.compile_app ~name:"httpd-1.3.27" v1_source
let compile_v2 () = Minic.Driver.compile_app ~name:"httpd-1.3.12" v2_source
