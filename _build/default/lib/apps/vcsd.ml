(** The version-control server — the CVS analogue carrying CVE-2003-0015.

    A "Directory" request with an empty argument makes [dirswitch] free the
    current directory string twice. The second [free] trips libc's heap
    consistency check and aborts inside the library — the paper's "crash at
    0x4f0eaaa0 (lib. free); heap inconsistent", attributed by memory-bug
    detection to the double-freeing call in [dirswitch]. *)

let reqbuf_size = 1024

let source = {|
char reqbuf[1024];
char *cur_dir;
int entry_count;

void send_str(char *s) {
  _send(s, strlen(s));
}

void dirswitch(char *arg) {
  if (cur_dir != 0) {
    free(cur_dir);
  }
  if (strlen(arg) == 0) {
    free(cur_dir);          // BUG: already freed just above
    cur_dir = (char*)0;
    return;
  }
  cur_dir = malloc(strlen(arg) + 1);
  if (cur_dir != 0) {
    strcpy(cur_dir, arg);
  }
}

void handle_request(char *req) {
  if (strncmp(req, "Directory ", 10) == 0) {
    dirswitch(req + 10);
    send_str("ok Directory\n");
    return;
  }
  if (strncmp(req, "Directory", 9) == 0) {
    // "Directory" with no argument at all: same switch, empty arg
    dirswitch(req + 9);
    send_str("ok Directory\n");
    return;
  }
  if (strncmp(req, "Entry ", 6) == 0) {
    entry_count = entry_count + 1;
    send_str("ok Entry\n");
    return;
  }
  if (strncmp(req, "noop", 4) == 0) {
    send_str("ok\n");
    return;
  }
  if (strncmp(req, "version", 7) == 0) {
    send_str("cvsd 1.11.4\n");
    return;
  }
  send_str("error unrecognized request\n");
}

int main() {
  _log("vcsd: ready");
  cur_dir = (char*)0;
  entry_count = 0;
  while (1) {
    int n = _recv(reqbuf, 1024);
    if (n < 0) { _exit(1); }
    handle_request(reqbuf);
  }
  return 0;
}
|}

let compile () = Minic.Driver.compile_app ~name:"cvsd-1.11.4" source
