(* Quickstart: protect a server with Sweeper, attack it, and watch the full
   defense process of the paper's Figure 3 — detection, rollback-and-analyze,
   antibody generation, and recovery — then see the antibody stop the next
   attack before anything crashes.

   Run with: dune exec examples/quickstart.exe *)

let () =
  print_endline "== Sweeper quickstart ==";
  print_endline "";
  (* 1. Load the vulnerable web server (the Apache 1.3.27 analogue with the
     CVE-2003-0542 stack smash) into a simulated process with address-space
     randomization on, and wrap it in the serving harness that takes
     lightweight checkpoints every 200 simulated milliseconds. *)
  let app = Apps.Registry.find "apache1" in
  let proc = Osim.Process.load ~aslr:true ~seed:2026 (app.r_compile ()) in
  let server = Osim.Server.create proc in
  ignore (Osim.Server.run server);
  Printf.printf "server %s up; libc randomized at 0x%x\n" app.r_program
    proc.Osim.Process.lib_image.Vm.Asm.base;

  (* 2. Serve some legitimate traffic. *)
  let benign = Apps.Registry.workload "apache1" 25 in
  List.iter (fun m -> ignore (Osim.Server.handle server m)) benign;
  Printf.printf "served %d benign requests (%d responses committed)\n"
    (List.length benign)
    (List.length (Osim.Process.committed_outputs proc));

  (* 3. A worm attacks. Under ASLR its guessed libc address is wrong, so
     instead of being compromised the process faults — the lightweight
     monitor's detection signal. Sweeper rolls back and analyzes. *)
  print_endline "";
  print_endline "-- worm attack #1 --";
  let exploit = Apps.Registry.exploit ~system_guess:0x4f771560 ~cmd_ptr:0 "apache1" in
  List.iter
    (fun msg ->
      match Sweeper.Orchestrator.protected_handle ~app:"apache1" server msg with
      | `Attack report ->
        Printf.printf "attack detected: %s\n"
          (Vm.Event.fault_to_string report.Sweeper.Orchestrator.a_fault);
        print_endline "";
        Sweeper.Report.print_table2 proc report;
        print_endline "";
        Printf.printf "first VSEF after %.2f ms, full analysis in %.2f ms\n"
          report.Sweeper.Orchestrator.a_time_to_first_vsef_ms
          report.Sweeper.Orchestrator.a_total_ms;
        Printf.printf "antibody stage: %s (%d VSEFs, signature %s)\n"
          (Sweeper.Antibody.stage_to_string
             report.Sweeper.Orchestrator.a_antibody.Sweeper.Antibody.ab_stage)
          (List.length report.Sweeper.Orchestrator.a_vsefs)
          (match report.Sweeper.Orchestrator.a_signature with
          | Some s -> Sweeper.Signature.to_string s
          | None -> "none")
      | other ->
        Printf.printf "unexpected outcome: %s\n"
          (match other with
          | `Served _ -> "served"
          | `Filtered _ -> "filtered"
          | `Blocked_by_vsef _ -> "vsef"
          | `Stopped -> "stopped"
          | `Compromised -> "compromised"
          | `Attack _ -> assert false))
    exploit.Apps.Exploits.x_messages;

  (* 4. Recovery happened inside handle_attack: the process was rolled back
     and re-executed without the malicious message. It still serves. *)
  print_endline "";
  print_endline "-- after recovery --";
  (match Osim.Server.handle server "GET /status\n" with
  | `Served _ -> print_endline "server is live again (no restart, state intact)"
  | _ -> print_endline "server did not recover?!");

  (* 5. The worm tries again (same exploit, polymorphic padding). The
     antibody stops it at the network proxy or at the hardened instructions
     — no crash, no rollback needed. *)
  print_endline "";
  print_endline "-- worm attack #2 (same vulnerability) --";
  List.iter
    (fun msg ->
      match Sweeper.Orchestrator.protected_handle ~app:"apache1" server msg with
      | `Filtered name -> Printf.printf "blocked by input signature (%s)\n" name
      | `Blocked_by_vsef d ->
        Printf.printf "blocked by VSEF: %s\n" (Sweeper.Detection.to_string d)
      | `Attack _ -> print_endline "crashed again — antibody failed?!"
      | _ -> print_endline "no effect")
    exploit.Apps.Exploits.x_messages;
  print_endline "";
  print_endline "done."
