examples/community_defense.mli:
