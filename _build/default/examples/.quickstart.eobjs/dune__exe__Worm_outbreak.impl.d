examples/worm_outbreak.ml: Apps Epidemic Printf Random Sweeper
