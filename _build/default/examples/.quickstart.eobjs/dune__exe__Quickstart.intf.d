examples/quickstart.mli:
