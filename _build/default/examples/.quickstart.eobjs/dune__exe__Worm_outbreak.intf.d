examples/worm_outbreak.mli:
