examples/quickstart.ml: Apps List Osim Printf Sweeper Vm
