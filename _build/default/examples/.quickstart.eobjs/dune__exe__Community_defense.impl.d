examples/community_defense.ml: Epidemic List Printf
