examples/forensics.mli:
