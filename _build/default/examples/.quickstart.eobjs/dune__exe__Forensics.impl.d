examples/forensics.ml: Apps Int List Option Osim Printf Set String Sweeper Vm
