(* Worm outbreak, mechanically: a small community of real (simulated) hosts
   running the vulnerable web server, attacked by a hit-list worm firing
   actual exploit bytes. Producer hosts run the full Sweeper stack; when one
   of them is probed it generates an antibody and publishes it; consumers
   deploy it and become immune. Every infection, crash, and block below is
   the result of genuine machine-level execution, not a model.

   Run with: dune exec examples/worm_outbreak.exe *)

let () =
  let n_hosts = 24 in
  let n_producers = 3 in
  Printf.printf "== Hit-list worm vs a %d-host community (%d producers) ==\n\n"
    n_hosts n_producers;
  let entry = Apps.Registry.find "apache1" in
  let community =
    Sweeper.Defense.create ~app:"apache1" ~compile:entry.r_compile ~n:n_hosts
      ~producers:n_producers ~seed:1000 ()
  in
  (* The worm: knows the binary (fixed application addresses) but must guess
     each host's randomized libc base. *)
  let rng = Random.State.make [| 0xBADC0DE |] in
  let exploit_for (_host : Sweeper.Defense.host) =
    let slide_guess = Random.State.int rng 4096 * 4096 in
    let exploit =
      Apps.Exploits.apache1_against
        ~system_guess:(0x4f770000 + slide_guess + 0x15a0)
        ~reqbuf_addr:0x08100000 ()
    in
    exploit.Apps.Exploits.x_messages
  in
  for round = 1 to 4 do
    Sweeper.Defense.worm_round community ~exploit_for;
    let s = community.Sweeper.Defense.stats in
    Printf.printf
      "round %d: %2d/%d infected | %3d attempts, %d detections, %d blocked by \
       antibodies%s\n"
      round
      (Sweeper.Defense.infected_count community)
      n_hosts s.Sweeper.Defense.s_attempts s.Sweeper.Defense.s_crashes
      s.Sweeper.Defense.s_blocked
      (match (round, s.Sweeper.Defense.s_first_antibody_ms) with
      | 1, Some ms -> Printf.sprintf " | first antibody in %.1f ms" ms
      | _ -> "")
  done;
  Printf.printf "\nfinal infection ratio: %.0f%%; antibody %s\n"
    (100. *. Sweeper.Defense.infection_ratio community)
    (match community.Sweeper.Defense.antibody with
    | Some (gen, ab) ->
      Printf.sprintf "generation %d (%s) deployed community-wide" gen
        (Sweeper.Antibody.stage_to_string ab.Sweeper.Antibody.ab_stage)
    | None -> "never produced");
  Printf.printf "all uninfected hosts still serving: %b\n"
    (Sweeper.Defense.all_alive community);
  (* Contrast with the analytic model at community scale: the same α and a
     5-second γ contain even a β=4000 hit-list worm across 100k hosts. *)
  let alpha = float_of_int n_producers /. float_of_int n_hosts in
  let p = { (Epidemic.Si.hitlist ~beta:4000. ()) with alpha } in
  Printf.printf
    "\n(analytic cross-check: alpha=%.3f, beta=4000, gamma=5s over 100k \
     hosts -> %.2f%% infected)\n"
    alpha
    (100. *. Epidemic.Si.infection_ratio p ~gamma:5.)
