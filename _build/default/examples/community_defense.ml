(* Community defense: explore Section 6's analytical model — how many
   Producers does the Internet need, and how fast must antibodies move, to
   stop Slammer and hit-list worms?

   Run with: dune exec examples/community_defense.exe *)

let line fmt = Printf.printf (fmt ^^ "\n")

let () =
  line "== Community defense against fast worms ==";
  line "";
  line "Scenario 1: Slammer as observed (beta = 0.1/s, N = 100k hosts)";
  let slammer = Epidemic.Si.slammer in
  List.iter
    (fun alpha ->
      let p = { slammer with alpha } in
      line "  producers = %5.0f (alpha = %-6g): gamma=5s -> %5.1f%% infected, gamma=20s -> %5.1f%%"
        (alpha *. p.n) alpha
        (100. *. Epidemic.Si.infection_ratio p ~gamma:5.)
        (100. *. Epidemic.Si.infection_ratio p ~gamma:20.))
    [ 0.01; 0.001; 0.0001 ];
  line "";
  line "Scenario 2: the same worm rebuilt as a hit-list worm (beta = 1000/s),";
  line "with every host running ASLR (attempt success rho = 2^-12):";
  let hit = { (Epidemic.Si.hitlist ()) with alpha = 0.0001 } in
  List.iter
    (fun gamma ->
      line "  response gamma = %3.0fs -> %6.2f%% infected" gamma
        (100. *. Epidemic.Si.infection_ratio hit ~gamma))
    [ 5.; 10.; 20.; 30.; 50.; 100. ];
  line "";
  line "Without the proactive layer the same community loses outright:";
  let naked = { hit with rho = 1.0 } in
  List.iter
    (fun gamma ->
      line "  rho=1, gamma = %3.0fs -> %6.2f%% infected" gamma
        (100. *. Epidemic.Si.infection_ratio naked ~gamma))
    [ 5.; 10. ];
  line "";
  line "How much response time can the community afford (target: <5%% infected)?";
  List.iter
    (fun beta ->
      let p = { (Epidemic.Si.hitlist ~beta ()) with alpha = 0.0001 } in
      match Epidemic.Si.max_gamma_for_ratio p ~target:0.05 with
      | Some g -> line "  beta = %5.0f: gamma budget = %.1f s" beta g
      | None -> line "  beta = %5.0f: cannot be contained" beta)
    [ 100.; 1000.; 4000. ];
  line "";
  line "Sweeper's measured pipeline: first VSEF < 60 ms, effective VSEF < 2 s,";
  line "plus ~3 s Vigilante-style dissemination = gamma ~ 5 s. Verdict:";
  List.iter
    (fun (beta, ratio, contained) ->
      line "  beta = %5.0f: %.2f%% infected -> %s" beta (100. *. ratio)
        (if contained then "CONTAINED" else "NOT CONTAINED"))
    (Epidemic.Community.hitlist_response_summary ());
  line "";
  line "Cross-check of the ODE against the discrete stochastic simulator:";
  List.iter
    (fun (alpha, gamma, ode, sim) ->
      line "  alpha=%-7g gamma=%-4g: ODE %.4f vs simulated %.4f" alpha gamma ode sim)
    (Epidemic.Community.cross_validate ())
