(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (Sections 5 and 6), plus the ablations called out in
   DESIGN.md and a set of Bechamel microbenchmarks of the primitives.

   Run with `dune exec bench/main.exe` (all sections) or pass section names
   (table1 table2 table3 fig4 fig5 fig6 fig7 fig8 vsef ablations micro). *)

(* Smoke mode (`bench smoke`, wired into `dune runtest`): every section
   with tiny parameters, so the whole harness is exercised in seconds.
   [sc full small] picks the smoke-scaled value. *)
let smoke = ref false
let sc full small = if !smoke then small else full

(* `--json`: dump machine-readable results (BENCH_vm.json, BENCH_pipeline.json). *)
let json_output = ref false

(* `bench ... --seed N` (or env BENCH_SEED; the flag wins): offset added
   to every workload-generation seed, pinning the whole harness for
   reproducible A/B runs — the same N replays the same layouts and
   request streams, different N's give independent workload draws. The
   default offset 0 reproduces the historical hard-coded seeds, so
   golden outputs (Table 2/3) are unchanged unless a seed is asked for.
   Mirrors the QCHECK_SEED plumbing in the test suites. *)
let bench_seed =
  ref
    (match Sys.getenv_opt "BENCH_SEED" with
    | Some s -> ( try int_of_string (String.trim s) with _ -> 0)
    | None -> 0)

let bseed base = base + !bench_seed

let section_header name =
  Printf.printf "\n=====================================================\n";
  Printf.printf "== %s\n" name;
  Printf.printf "=====================================================\n"

let apps = [ "apache1"; "apache2"; "cvs"; "squid" ]

(* ------------------------------------------------------------------ *)
(* Table 1: list of tested exploits                                    *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section_header "Table 1: List of tested exploits";
  Printf.printf "%-8s | %-14s | %-22s | %-13s | %-20s\n" "Name" "Program"
    "Description" "CVE ID" "Bug Type";
  Printf.printf "%s\n" (String.make 90 '-');
  List.iter
    (fun key ->
      let e = Apps.Registry.find key in
      Printf.printf "%-8s | %-14s | %-22s | %-13s | %-20s\n" e.r_name
        e.r_program e.r_description e.r_cve e.r_bug_type)
    apps

(* ------------------------------------------------------------------ *)
(* Tables 2 and 3: full defense pipeline per exploit                   *)
(* ------------------------------------------------------------------ *)

(* Run one complete attack/defense cycle against [key]; returns the
   analysis report and the protected server (post-recovery). *)
let attack_and_analyze ?benign ?(seed = 42) key =
  let benign = match benign with Some n -> n | None -> sc 20 5 in
  let entry = Apps.Registry.find key in
  let proc = Osim.Process.load ~aslr:true ~seed:(bseed seed) (entry.r_compile ()) in
  let server = Osim.Server.create proc in
  ignore (Osim.Server.run server);
  List.iter
    (fun m -> ignore (Osim.Server.handle server m))
    (Apps.Registry.workload ~seed:(bseed 7) key benign);
  let exploit = Apps.Registry.exploit ~system_guess:0x12345678 ~cmd_ptr:0 key in
  let report = ref None in
  List.iter
    (fun m ->
      match Sweeper.Orchestrator.protected_handle ~app:key server m with
      | `Attack r -> report := Some r
      | `Served _ | `Filtered _ | `Blocked_by_vsef _ | `Stopped | `Compromised
        -> ())
    exploit.Apps.Exploits.x_messages;
  match !report with
  | Some r -> (r, server, proc)
  | None -> failwith (key ^ ": exploit did not trigger the defense")

let table2 () =
  section_header "Table 2: Overall Sweeper results";
  List.iter
    (fun key ->
      let r, _server, proc = attack_and_analyze key in
      Sweeper.Report.print_table2 proc r;
      print_newline ())
    apps

let table3 () =
  section_header "Table 3: Sweeper failure analysis time";
  Sweeper.Report.print_table3_header ();
  List.iter
    (fun key ->
      let r, _, _ = attack_and_analyze key in
      Sweeper.Report.print_table3_row r)
    apps;
  Printf.printf
    "(wall-clock of this harness; the paper's ordering core-dump << membug \
     < taint << slicing and first-VSEF << total is the reproduced shape)\n"

(* ------------------------------------------------------------------ *)
(* Figure 4: normal-execution overhead vs checkpoint interval          *)
(* ------------------------------------------------------------------ *)

let run_workload ?(config = Osim.Server.default_config) key n_requests seed =
  let seed = bseed seed in
  let entry = Apps.Registry.find key in
  let proc = Osim.Process.load ~aslr:true ~seed (entry.r_compile ()) in
  let server = Osim.Server.create ~config proc in
  ignore (Osim.Server.run server);
  let reqs = Apps.Registry.workload ~seed key n_requests in
  Gc.major ();
  let t0 = Unix.gettimeofday () in
  List.iter (fun m -> ignore (Osim.Server.handle server m)) reqs;
  let dt = Unix.gettimeofday () -. t0 in
  let cow, mapped = Vm.Memory.stats proc.Osim.Process.mem in
  (dt, Osim.Server.checkpoints_taken server, cow, mapped, proc)

let median l =
  let a = List.sort compare l in
  List.nth a (List.length a / 2)

let fig4 () =
  section_header
    "Figure 4: Performance at varying checkpoint intervals (Squid workload)";
  let n = sc 1500 60 in
  let trials = sc 7 1 in
  let measure config =
    let times = ref [] in
    let last = ref None in
    for i = 1 to trials do
      let dt, cks, cow, mapped, _ = run_workload ~config "squid" n (100 + i) in
      times := dt :: !times;
      last := Some (cks, cow, mapped)
    done;
    let cks, cow, mapped = Option.get !last in
    (median !times, cks, cow, mapped)
  in
  (* Warm up code paths and the allocator before any timed run. *)
  ignore (run_workload "squid" (sc 200 40) 1);
  let base_time, _, _, _ =
    measure { Osim.Server.checkpoint_interval_ms = 0; keep_checkpoints = 20 }
  in
  Printf.printf "baseline (no checkpoints): %.3f s for %d requests\n\n"
    base_time n;
  Printf.printf "%-14s %12s %12s %12s %14s %16s\n" "interval(ms)" "time(s)"
    "overhead(%)" "checkpoints" "cow-copies" "work-overhead(%)";
  List.iter
    (fun interval ->
      let t, cks, cow, _ =
        measure
          { Osim.Server.checkpoint_interval_ms = interval; keep_checkpoints = 20 }
      in
      (* The deterministic cost model: each checkpoint copies the page
         table (O(mapped pages)), each COW fault copies one 4 KiB page.
         Expressed relative to the instructions executed, this is the
         noise-free counterpart of the wall-clock column. *)
      let page_copy_cost = 1.0 and table_cost = 2.0 in
      let work =
        (float_of_int cks *. table_cost) +. (float_of_int cow *. page_copy_cost)
      in
      let total_work = float_of_int (n * 4000) /. 1000. in
      Printf.printf "%-14d %12.3f %12.2f %12d %14d %16.3f\n" interval t
        ((t /. base_time -. 1.) *. 100.)
        cks cow
        (work /. total_work *. 100.))
    [ 20; 30; 40; 60; 80; 100; 140; 200 ];
  Printf.printf
    "(paper: ~5%% at 30 ms falling to ~0.9%% at 200 ms; the reproduced shape \
     is monotone-decreasing overhead with interval — the deterministic \
     work-overhead column shows it without harness noise)\n"

(* ------------------------------------------------------------------ *)
(* Figure 5: throughput during a single attack + recovery              *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  section_header "Figure 5: Throughput during a single attack against Squid";
  let key = "squid" in
  let entry = Apps.Registry.find key in
  let proc = Osim.Process.load ~aslr:true ~seed:7 (entry.r_compile ()) in
  let server = Osim.Server.create proc in
  ignore (Osim.Server.run server);
  (* Timeline in wall-clock buckets: serve benign traffic, fire the exploit
     mid-stream, keep serving. *)
  let bucket_ms = 50. in
  let buckets : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let t_start = Unix.gettimeofday () in
  let mark () =
    let b = int_of_float ((Unix.gettimeofday () -. t_start) *. 1000. /. bucket_ms) in
    Hashtbl.replace buckets b (1 + Option.value ~default:0 (Hashtbl.find_opt buckets b))
  in
  let benign = Apps.Registry.workload ~seed:3 key (sc 3000 300) in
  let exploit = Apps.Registry.exploit key in
  let attack_at = sc 1500 150 in
  let attack_bucket = ref 0 in
  let recovery_ms = ref 0. in
  List.iteri
    (fun i m ->
      if i = attack_at then begin
        attack_bucket :=
          int_of_float ((Unix.gettimeofday () -. t_start) *. 1000. /. bucket_ms);
        let t0 = Unix.gettimeofday () in
        List.iter
          (fun xm ->
            ignore (Sweeper.Orchestrator.protected_handle ~app:key server xm))
          exploit.Apps.Exploits.x_messages;
        recovery_ms := (Unix.gettimeofday () -. t0) *. 1000.
      end;
      match Osim.Server.handle server m with
      | `Served _ -> mark ()
      | _ -> ())
    benign;
  let max_bucket =
    Hashtbl.fold (fun b _ acc -> max b acc) buckets 0
  in
  Printf.printf "time(ms)  served-requests-per-%.0fms\n" bucket_ms;
  for b = 0 to max_bucket do
    let v = Option.value ~default:0 (Hashtbl.find_opt buckets b) in
    let bar = String.make (min 60 v) '#' in
    Printf.printf "%8.0f  %4d %s%s\n"
      (float_of_int b *. bucket_ms)
      v bar
      (if b = !attack_bucket then "   <-- attack detected here" else "")
  done;
  Printf.printf
    "\nanalysis+antibody+recovery stall: %.1f ms (service then resumes; a \
     restart would also lose all in-memory state)\n"
    !recovery_ms

(* ------------------------------------------------------------------ *)
(* Section 5.3: VSEF overhead                                          *)
(* ------------------------------------------------------------------ *)

let vsef_overhead () =
  section_header "Section 5.3: Vulnerability monitoring (VSEF) overhead";
  let n = sc 1500 100 in
  let trials = sc 5 1 in
  let measure key prepare =
    let times = ref [] in
    let hooks = ref 0 in
    for t = 1 to trials do
      let entry = Apps.Registry.find key in
      let proc = Osim.Process.load ~aslr:true ~seed:5 (entry.r_compile ()) in
      let server = Osim.Server.create proc in
      ignore (Osim.Server.run server);
      hooks := prepare proc;
      let reqs = Apps.Registry.workload ~seed:(6 + t) key n in
      Gc.major ();
      let t0 = Unix.gettimeofday () in
      List.iter (fun m -> ignore (Osim.Server.handle server m)) reqs;
      times := (Unix.gettimeofday () -. t0) :: !times
    done;
    (median !times, !hooks)
  in
  let install_tier vsefs proc =
    let installs = List.map (Sweeper.Vsef.install proc) vsefs in
    List.fold_left (fun acc i -> acc + Sweeper.Vsef.footprint i) 0 installs
  in
  let report key =
    let r, _, _ = attack_and_analyze key in
    let all = r.Sweeper.Orchestrator.a_vsefs in
    let non_taint =
      List.filter
        (fun v ->
          match v.Sweeper.Vsef.v_check with
          | Sweeper.Vsef.Taint_filter _ -> false
          | _ -> true)
        all
    in
    let base, _ = measure key (fun _ -> 0) in
    let t_check, h_check = measure key (install_tier non_taint) in
    let t_all, h_all = measure key (install_tier all) in
    Printf.printf "%-8s baseline %.3f s over %d requests\n" key base n;
    Printf.printf
      "  memory-check VSEFs only : %.3f s -> %+6.2f%%  (%d hooked locations) \
       <- the paper's configuration\n"
      t_check
      ((t_check /. base -. 1.) *. 100.)
      h_check;
    Printf.printf
      "  + taint-filter VSEF     : %.3f s -> %+6.2f%%  (%d hooked locations)\n"
      t_all
      ((t_all /. base -. 1.) *. 100.)
      h_all
  in
  report "squid";
  report "apache1";
  Printf.printf
    "(paper: 0.93%% throughput drop for the Squid heap-bounds VSEF; our \
     interpreter amplifies per-hook cost, the hooked-locations column is the \
     architectural quantity)\n"

(* ------------------------------------------------------------------ *)
(* Figures 6-8: community defense                                      *)
(* ------------------------------------------------------------------ *)

let print_figure (fig : Epidemic.Community.figure) note =
  Printf.printf "beta = %g, rho = %g\n" fig.f_beta fig.f_rho;
  Printf.printf "%-12s" "alpha:";
  (match fig.f_series with
  | s :: _ -> List.iter (fun (a, _) -> Printf.printf "%10.4g" a) s.s_points
  | [] -> ());
  print_newline ();
  List.iter
    (fun (s : Epidemic.Community.series) ->
      Printf.printf "gamma=%-6g" s.s_gamma;
      List.iter (fun (_, r) -> Printf.printf "%10.4f" r) s.s_points;
      print_newline ())
    fig.f_series;
  Printf.printf "%s\n" note

let fig6 () =
  section_header "Figure 6: Sweeper defense against Slammer (beta=0.1)";
  print_figure (Epidemic.Community.figure6 ())
    "(paper: alpha=0.0001, gamma=5 -> ~15%; alpha=0.001, gamma=20 -> ~5%)"

let fig7 () =
  section_header
    "Figure 7: Sweeper + proactive protection vs hit-list worm (beta=1000)";
  print_figure (Epidemic.Community.figure7 ())
    "(paper: gamma=50 much worse than gamma=30)"

let fig8 () =
  section_header
    "Figure 8: Sweeper + proactive protection vs hit-list worm (beta=4000)";
  print_figure (Epidemic.Community.figure8 ())
    "(paper: gamma=20 much worse than gamma=10; gamma=5 negligible)"

let hitlist_response () =
  section_header "Section 6.3: end-to-end response time against hit-list worms";
  List.iter
    (fun (beta, ratio, contained) ->
      Printf.printf
        "beta=%-6g gamma=5s (2s analysis + 3s dissemination): infection ratio \
         %.4f -> %s\n"
        beta ratio
        (if contained then "contained" else "NOT contained"))
    (Epidemic.Community.hitlist_response_summary ());
  Printf.printf "\nODE vs stochastic cross-validation (beta=1000, rho=2^-12):\n";
  List.iter
    (fun (alpha, gamma, ode, sim) ->
      Printf.printf "  alpha=%-8g gamma=%-4g ODE=%.4f simulated=%.4f\n" alpha
        gamma ode sim)
    (Epidemic.Community.cross_validate ())

(* ------------------------------------------------------------------ *)
(* Mechanical community defense (the micro-scale twin of Figs 6-8)     *)
(* ------------------------------------------------------------------ *)

let community () =
  section_header
    "Mechanical community defense: real hosts, real exploit bytes";
  let run ~n ~producers =
    let entry = Apps.Registry.find "apache1" in
    let c =
      Sweeper.Defense.create ~app:"apache1" ~compile:entry.r_compile ~n
        ~producers ~seed:5000 ()
    in
    let rng = Random.State.make [| n; producers |] in
    let exploit_for (_ : Sweeper.Defense.host) =
      let guess = 0x4f770000 + (Random.State.int rng 4096 * 4096) + 0x15a0 in
      (Apps.Exploits.apache1_against ~system_guess:guess
         ~reqbuf_addr:0x08100000 ())
        .Apps.Exploits.x_messages
    in
    for _ = 1 to 3 do
      Sweeper.Defense.worm_round c ~exploit_for
    done;
    let s = c.Sweeper.Defense.stats in
    Printf.printf
      "%3d hosts, %d producers: %5.1f%% infected | %d detections, %d blocked, \
       first antibody %s\n"
      n producers
      (100. *. Sweeper.Defense.infection_ratio c)
      s.Sweeper.Defense.s_crashes s.Sweeper.Defense.s_blocked
      (match s.Sweeper.Defense.s_first_antibody_ms with
      | Some ms -> Printf.sprintf "%.1f ms" ms
      | None -> "never")
  in
  if !smoke then begin
    run ~n:8 ~producers:1;
    run ~n:8 ~producers:0
  end
  else begin
    run ~n:16 ~producers:2;
    run ~n:16 ~producers:1;
    run ~n:32 ~producers:2;
    run ~n:16 ~producers:0
  end;
  Printf.printf
    "(with zero producers no antibody exists; ASLR alone still turns most \
     attempts into crashes, i.e. DoS instead of takeover)\n"

(* ------------------------------------------------------------------ *)
(* Pipeline: cooperative scheduler scaling                             *)
(* ------------------------------------------------------------------ *)

(* Community-scale serving on the cooperative scheduler: n hosts, benign
   traffic on all of them, one attack stream spliced mid-stream into the
   producer's inbox — service, analysis, recovery and antibody
   propagation all interleaved in simulated time. The numbers are the
   host- and instruction-throughput of the population layer, the
   prerequisite for the "heavy traffic from millions of users" target. *)
let pipeline_scales = [ 10; 100; 1000 ]

type pipeline_row = {
  p_hosts : int;
  p_messages : int;
  p_create_s : float;
  p_run_s : float;
  p_virtual_ms : float;
  p_instructions : int;
  p_sched_steps : int;
  p_crashes : int;
  p_blocked : int;
  p_infections : int;
  p_first_antibody_ms : float option;
  p_spans : int;  (** trace events emitted; 0 on the obs-off run *)
}

let pipeline_run ?(obs = false) ~n ~benign () =
  let entry = Apps.Registry.find "apache1" in
  let t0 = Unix.gettimeofday () in
  let c =
    Sweeper.Defense.create ~app:"apache1" ~compile:entry.r_compile ~n
      ~producers:1 ~seed:(9000 + n) ()
  in
  let create_s = Unix.gettimeofday () -. t0 in
  (* The producer's stream carries the exploit mid-way (wrong address
     guess: the monitors trip and the full pipeline runs interleaved with
     everyone else's service). *)
  let exploit = Apps.Registry.exploit ~system_guess:0x12345678 ~cmd_ptr:0 "apache1" in
  let messages = ref 0 in
  let traffic (h : Sweeper.Defense.host) =
    let w = Apps.Registry.workload ~seed:h.Sweeper.Defense.h_id "apache1" benign in
    let stream =
      if h.Sweeper.Defense.h_id = 0 then
        let front = benign / 2 in
        List.filteri (fun i _ -> i < front) w
        @ exploit.Apps.Exploits.x_messages
        @ List.filteri (fun i _ -> i >= front) w
      else w
    in
    messages := !messages + List.length stream;
    stream
  in
  Gc.major ();
  if obs then begin
    Obs.Trace.enable ();
    Obs.Trace.clear ()
  end;
  let t1 = Unix.gettimeofday () in
  let sched = Sweeper.Defense.run_scheduled c ~traffic in
  let run_s = Unix.gettimeofday () -. t1 in
  let spans = if obs then Obs.Trace.event_count () else 0 in
  if obs then begin
    Obs.Trace.disable ();
    Obs.Trace.clear ()
  end;
  {
    p_hosts = n;
    p_messages = !messages;
    p_create_s = create_s;
    p_run_s = run_s;
    p_virtual_ms = Osim.Sched.vclock_ms sched;
    p_instructions = Osim.Sched.instructions sched;
    p_sched_steps = Osim.Sched.steps sched;
    p_crashes = c.Sweeper.Defense.stats.Sweeper.Defense.s_crashes;
    p_blocked = c.Sweeper.Defense.stats.Sweeper.Defense.s_blocked;
    p_infections = c.Sweeper.Defense.stats.Sweeper.Defense.s_infections;
    p_first_antibody_ms =
      c.Sweeper.Defense.stats.Sweeper.Defense.s_first_antibody_ms;
    p_spans = spans;
  }

(* ------------------------------------------------------------------ *)
(* Domain-sharded community (Osim.Cluster): single-domain scaling, the *)
(* domain-count sweep at a fixed shard partition, one outbreak at      *)
(* 10^5-host scale, and the differential oracle.                       *)
(* ------------------------------------------------------------------ *)

module Sh = Sweeper.Defense.Sharded

type sharded_row = {
  d_hosts : int;
  d_probed : int;
  d_domains : int;
  d_shards : int;
  d_create_s : float;
  d_run_s : float;
  d_windows : int;
  d_exchanged : int;
  d_instructions : int;
  d_infected : int;
  d_first_ab : float option;  (** virtual ms *)
}

(* Attack bytes as a pure function of (seed, host, round): every domain
   count replays the identical outbreak. *)
let sharded_attack ~seed ~round (h : Sweeper.Defense.host) =
  let rng =
    Random.State.make [| seed; 0xA77AC4; h.Sweeper.Defense.h_id; round |]
  in
  let guess = 0x4f770000 + (Random.State.int rng 4096 * 4096) + 0x15a0 in
  (Apps.Exploits.apache1_against ~system_guess:guess ~reqbuf_addr:0x08100000 ())
    .Apps.Exploits.x_messages

(* Population-scale runs live or die by the GC: with 10^2..10^5 hosts of
   ~230 KB live state each, the default 256 KB minor heap and 120%
   space overhead spend a large, host-count-dependent fraction of the
   run marking — which shows up as a phantom hosts/sec regression at
   larger populations. Tune once for the whole bench process. *)
let tune_gc_for_population () =
  Gc.set
    {
      (Gc.get ()) with
      Gc.minor_heap_size = 8 * 1024 * 1024 (* words: 64 MB *);
      space_overhead = 400;
    }

(* The worm probes every [probe_every]-th host: at community scale the
   un-probed hosts cost nothing after boot (no mail, never scheduled).
   [trials] reruns the (deterministic) run and keeps the fastest wall
   time — populations this size sit at the mercy of scheduler noise. *)
let sharded_run ?shards ?(trials = 1) ~domains ~n ~producers ~probe_every
    ~rounds () =
  let entry = Apps.Registry.find "apache1" in
  let seed = bseed 4321 in
  let one () =
    let t0 = Unix.gettimeofday () in
    let c =
      Sh.create ~domains ?shards ~app:"apache1" ~compile:entry.r_compile ~n
        ~producers ~seed ()
    in
    let create_s = Unix.gettimeofday () -. t0 in
    Gc.major ();
    let t1 = Unix.gettimeofday () in
    for round = 1 to rounds do
      Sh.post_traffic c ~traffic:(fun h ->
          if h.Sweeper.Defense.h_id mod probe_every <> 0 then []
          else sharded_attack ~seed ~round h);
      ignore (Sh.run_round c)
    done;
    let run_s = Unix.gettimeofday () -. t1 in
    (create_s, run_s, Sh.summary c)
  in
  let c0, r0, s = one () in
  let create_s = ref c0 and run_s = ref r0 in
  for _ = 2 to trials do
    let c1, r1, _ = one () in
    create_s := min !create_s c1;
    run_s := min !run_s r1
  done;
  let create_s = !create_s and run_s = !run_s in
  ( {
      d_hosts = n;
      d_probed = (n + probe_every - 1) / probe_every;
      d_domains = s.Sh.sm_domains;
      d_shards = s.Sh.sm_shards;
      d_create_s = create_s;
      d_run_s = run_s;
      d_windows = s.Sh.sm_windows;
      d_exchanged = s.Sh.sm_exchanged;
      d_instructions = s.Sh.sm_instructions;
      d_infected = s.Sh.sm_infected_hosts;
      d_first_ab = s.Sh.sm_first_antibody_vtime_ms;
    },
    s )

type sharded_data = {
  sd_cores : int;
  sd_seed : int;
  sd_single : sharded_row list;  (** 1 domain, scaling host count *)
  sd_domains : sharded_row list; (** fixed shards, scaling domain count *)
  sd_scale : sharded_row;        (** the 10^5-host outbreak *)
  sd_oracle_hosts : int;
  sd_oracle_domains : int list;
  sd_oracle_ok : bool;
}

let print_sharded_row r =
  Printf.printf
    "%7d hosts (%5d probed) %d dom/%d shard: create %7.2f s, run %7.3f s \
     (%8.1f hosts/s), %3d windows, %4d envelopes, antibody %s\n"
    r.d_hosts r.d_probed r.d_domains r.d_shards r.d_create_s r.d_run_s
    (float_of_int r.d_hosts /. r.d_run_s)
    r.d_windows r.d_exchanged
    (match r.d_first_ab with
    | Some ms -> Printf.sprintf "%.1f vms" ms
    | None -> "never")

let sharded_bench () =
  section_header
    "Domain-sharded community: barrier windows over Osim.Cluster";
  tune_gc_for_population ();
  let cores = Domain.recommended_domain_count () in
  Printf.printf "(%d core(s) available to this machine)\n" cores;
  (* Single-domain host-count scaling: the satellite regression check --
     hosts/sec must not fall from 100 to 1000 hosts now that turn
     selection is O(log n). *)
  let single =
    List.map
      (fun n ->
        let r, _ =
          sharded_run ~trials:2 ~domains:1 ~n ~producers:1 ~probe_every:1
            ~rounds:2 ()
        in
        print_sharded_row r;
        r)
      (if !smoke then [ 8; 16 ] else [ 100; 300; 1000 ])
  in
  (* Domain-count sweep over a FIXED 4-shard partition: the work split is
     identical for every row; only the executing domain count changes. *)
  let dn = sc 600 12 in
  let domain_rows =
    List.map
      (fun domains ->
        let r, _ =
          sharded_run ~trials:2 ~shards:4 ~domains ~n:dn ~producers:2
            ~probe_every:1 ~rounds:2 ()
        in
        print_sharded_row r;
        r)
      [ 1; 2; 4 ]
  in
  (* Outbreak at scale: the worm probes 1 in 50; everyone else is quiet
     population. Un-probed hosts cost only their boot. *)
  let scale_n = sc 100_000 2_000 in
  let at_scale, _ =
    sharded_run ~shards:4 ~domains:(min 4 cores) ~n:scale_n
      ~producers:(max 2 (scale_n / 1000))
      ~probe_every:50 ~rounds:1 ()
  in
  print_sharded_row at_scale;
  (* The differential oracle, re-checked on the bench configuration. *)
  let oracle_hosts = sc 24 6 in
  let oracle_domains = [ 1; 2; 4 ] in
  let summaries =
    List.map
      (fun domains ->
        snd
          (sharded_run ~shards:4 ~domains ~n:oracle_hosts ~producers:1
             ~probe_every:1 ~rounds:2 ()))
      oracle_domains
  in
  let ok =
    match summaries with
    | [] -> false
    | first :: rest ->
      let strip s = { s with Sh.sm_domains = 0 } in
      List.for_all (fun s -> strip s = strip first) rest
  in
  Printf.printf "oracle: sharded(%s domains) identical on %d hosts -> %s\n"
    (String.concat "/" (List.map string_of_int oracle_domains))
    oracle_hosts
    (if ok then "MATCH" else "MISMATCH");
  if not ok then failwith "sharded oracle mismatch in bench";
  {
    sd_cores = cores;
    sd_seed = bseed 4321;
    sd_single = single;
    sd_domains = domain_rows;
    sd_scale = at_scale;
    sd_oracle_hosts = oracle_hosts;
    sd_oracle_domains = oracle_domains;
    sd_oracle_ok = ok;
  }

let sharded_row_json r =
  Printf.sprintf
    "{ \"hosts\": %d, \"probed\": %d, \"domains\": %d, \"shards\": %d, \
     \"create_s\": %.3f, \"run_s\": %.3f, \"hosts_per_s\": %.1f, \
     \"windows\": %d, \"exchanged\": %d, \"instructions\": %d, \
     \"infected\": %d, \"first_antibody_vtime_ms\": %s }"
    r.d_hosts r.d_probed r.d_domains r.d_shards r.d_create_s r.d_run_s
    (float_of_int r.d_hosts /. r.d_run_s)
    r.d_windows r.d_exchanged r.d_instructions r.d_infected
    (match r.d_first_ab with
    | Some ms -> Printf.sprintf "%.2f" ms
    | None -> "null")

(* ------------------------------------------------------------------ *)
(* Forensics: infection-tree reconstruction throughput.                *)
(* ------------------------------------------------------------------ *)

type forensics_row = {
  f_hosts : int;
  f_edges : int;
  f_blocked : int;
  f_reconstruct_s : float;
  f_max_depth : int;
}

type forensics_data = {
  fx_rows : forensics_row list;
  fx_oracle_hosts : int;
  fx_oracle_edges : int;
  fx_oracle_ok : bool;
}

(* Synthetic evidence: one random infection wave over [n] hosts (every
   host compromised by a random earlier victim, plus ~10% quarantined
   probes that never landed). Exercises reconstruct()'s sort, parent
   resolution, and depth walk at population sizes the simulator cannot
   reach in bench time. *)
let synthetic_evidence ~seed n =
  let rng = Random.State.make [| seed; 0xF04E5; n |] in
  let seqs = Hashtbl.create 256 in
  let next_seq src =
    let r =
      match Hashtbl.find_opt seqs src with
      | Some r -> r
      | None ->
        let r = ref 0 in
        Hashtbl.add seqs src r;
        r
    in
    let v = !r in
    incr r;
    v
  in
  let suspects = ref [] in
  for i = 0 to n - 1 do
    let src = if i = 0 then -1 else Random.State.int rng i in
    let seq = if src < 0 then 0 else next_seq src in
    suspects :=
      {
        Forensics.su_host = i;
        su_msg = 0;
        su_src = src;
        su_seq = seq;
        su_vtime = float_of_int i *. 0.05;
        su_infected = true;
      }
      :: !suspects;
    if i > 0 && Random.State.int rng 10 = 0 then begin
      let bsrc = Random.State.int rng i in
      suspects :=
        {
          Forensics.su_host = i;
          su_msg = 1;
          su_src = bsrc;
          su_seq = next_seq bsrc;
          su_vtime = (float_of_int i *. 0.05) +. 0.01;
          su_infected = false;
        }
        :: !suspects
    end
  done;
  { Forensics.ev_hosts = n; ev_suspects = !suspects }

(* A worm spread with real infections: round 1 seeds one aimed probe on
   a consumer; afterwards every infected host probes two targets per
   round, aimed with probability 0.7 (the rest crash their victim and
   feed the producers). Mirrors `sweeperctl forensics`; pure in
   (seed, host, round) so every domain count replays it identically. *)
let forensics_spread c ~seed ~rounds =
  let host_arr = Array.of_list (Sh.hosts c) in
  let n = Array.length host_arr in
  let aimed (dst : Sweeper.Defense.host) =
    let proc = dst.Sweeper.Defense.h_proc in
    (Apps.Exploits.apache1_against
       ~system_guess:(Osim.Process.system_addr proc)
       ~reqbuf_addr:(Hashtbl.find proc.Osim.Process.data_symbols "reqbuf")
       ())
      .Apps.Exploits.x_messages
  in
  for round = 1 to rounds do
    let attempts = Hashtbl.create 64 in
    let add dst pair =
      Hashtbl.replace attempts dst
        (pair :: Option.value ~default:[] (Hashtbl.find_opt attempts dst))
    in
    if round = 1 then begin
      let rng = Random.State.make [| seed; 0x5EED |] in
      let dst = host_arr.(1 + Random.State.int rng (n - 1)) in
      List.iter
        (fun m -> add dst.Sweeper.Defense.h_id (-1, m))
        (aimed dst)
    end
    else
      Array.iter
        (fun (src : Sweeper.Defense.host) ->
          if src.Sweeper.Defense.h_infected then begin
            let rng =
              Random.State.make
                [| seed; 0x3072; src.Sweeper.Defense.h_id; round |]
            in
            for _k = 1 to 2 do
              let dst = host_arr.(Random.State.int rng n) in
              let accurate = Random.State.float rng 1.0 < 0.7 in
              if dst.Sweeper.Defense.h_id <> src.Sweeper.Defense.h_id then
                let msgs =
                  if accurate then aimed dst
                  else sharded_attack ~seed ~round dst
                in
                List.iter
                  (fun m ->
                    add dst.Sweeper.Defense.h_id
                      (src.Sweeper.Defense.h_id, m))
                  msgs
            done
          end)
        host_arr;
    Sh.post_traffic_from c ~traffic:(fun h ->
        List.rev
          (Option.value ~default:[]
             (Hashtbl.find_opt attempts h.Sweeper.Defense.h_id)));
    ignore (Sh.run_round c)
  done

let forensics_bench () =
  section_header "Forensics: infection-tree reconstruction from netlogs";
  tune_gc_for_population ();
  let sizes = if !smoke then [ 500 ] else [ 1_000; 10_000; 100_000 ] in
  let rows =
    List.map
      (fun n ->
        let ev = synthetic_evidence ~seed:(bseed 77) n in
        Gc.major ();
        let t0 = Unix.gettimeofday () in
        let tree = Forensics.reconstruct ev in
        let dt = Unix.gettimeofday () -. t0 in
        let edges = List.length tree.Forensics.t_edges in
        Printf.printf
          "%7d hosts: %7d edge(s) reconstructed in %8.4f s (%10.0f \
           edges/s), depth %d\n"
          n edges dt
          (float_of_int edges /. dt)
          tree.Forensics.t_max_depth;
        {
          f_hosts = n;
          f_edges = edges;
          f_blocked = tree.Forensics.t_blocked;
          f_reconstruct_s = dt;
          f_max_depth = tree.Forensics.t_max_depth;
        })
      sizes
  in
  (* A real (small) 2-domain spread: the netlog reconstruction must
     equal the simulator's ground-truth infection log — the oracle the
     test suite qchecks over random topologies. *)
  let entry = Apps.Registry.find "apache1" in
  let oracle_hosts = sc 16 8 in
  let c =
    Sh.create ~domains:2 ~app:"apache1" ~compile:entry.r_compile
      ~n:oracle_hosts ~producers:1 ~seed:(bseed 4321) ()
  in
  forensics_spread c ~seed:(bseed 4321) ~rounds:(sc 3 2);
  let tree = Forensics.reconstruct (Forensics.of_sharded c) in
  let edges = List.length tree.Forensics.t_edges in
  let ok = Result.is_ok (Forensics.check tree (Forensics.ground_truth c)) in
  Printf.printf
    "oracle: netlog reconstruction vs ground truth on %d hosts (%d \
     edge(s)) -> %s\n"
    oracle_hosts edges
    (if ok then "MATCH" else "MISMATCH");
  if not ok then failwith "forensic reconstruction diverged from ground truth";
  {
    fx_rows = rows;
    fx_oracle_hosts = oracle_hosts;
    fx_oracle_edges = edges;
    fx_oracle_ok = ok;
  }

let write_pipeline_json rows (sd : sharded_data) (fd : forensics_data) =
  let oc = open_out "BENCH_pipeline.json" in
  Printf.fprintf oc "{\n  \"quantum_instrs\": %d,\n  \"scales\": [\n"
    Osim.Sched.default_quantum;
  List.iteri
    (fun i (r, ro) ->
      Printf.fprintf oc
        "    { \"hosts\": %d, \"messages\": %d, \"create_s\": %.3f, \
         \"run_s\": %.3f, \"virtual_ms\": %.1f, \"instructions\": %d, \
         \"sched_steps\": %d, \"hosts_per_s\": %.1f, \"instrs_per_s\": %.3e, \
         \"crashes\": %d, \"blocked\": %d, \"infections\": %d, \
         \"first_antibody_ms\": %s, \"obs_run_s\": %.3f, \"spans\": %d, \
         \"spans_per_s\": %.1f }%s\n"
        r.p_hosts r.p_messages r.p_create_s r.p_run_s r.p_virtual_ms
        r.p_instructions r.p_sched_steps
        (float_of_int r.p_hosts /. r.p_run_s)
        (float_of_int r.p_instructions /. r.p_run_s)
        r.p_crashes r.p_blocked r.p_infections
        (match r.p_first_antibody_ms with
        | Some ms -> Printf.sprintf "%.2f" ms
        | None -> "null")
        ro.p_run_s ro.p_spans
        (float_of_int ro.p_spans /. ro.p_run_s)
        (if i < List.length rows - 1 then "," else ""))
    rows;
  Printf.fprintf oc "  ],\n";
  let row_list rs =
    String.concat ",\n      " (List.map sharded_row_json rs)
  in
  let speedup r =
    match sd.sd_domains with
    | base :: _ -> base.d_run_s /. r.d_run_s
    | [] -> 1.
  in
  Printf.fprintf oc
    "  \"sharded\": {\n\
    \    \"cores\": %d,\n\
    \    \"seed\": %d,\n\
    \    \"single_domain\": [\n      %s\n    ],\n\
    \    \"domain_scaling\": [\n      %s\n    ],\n\
    \    \"speedup_vs_1_domain\": [ %s ],\n\
    \    \"at_scale\": %s,\n\
    \    \"oracle\": { \"hosts\": %d, \"domains_checked\": [ %s ], \
     \"matches\": %b }\n\
    \  },\n"
    sd.sd_cores sd.sd_seed
    (row_list sd.sd_single)
    (row_list sd.sd_domains)
    (String.concat ", "
       (List.map (fun r -> Printf.sprintf "%.2f" (speedup r)) sd.sd_domains))
    (sharded_row_json sd.sd_scale)
    sd.sd_oracle_hosts
    (String.concat ", " (List.map string_of_int sd.sd_oracle_domains))
    sd.sd_oracle_ok;
  let forensics_row_json r =
    Printf.sprintf
      "{ \"hosts\": %d, \"edges\": %d, \"blocked\": %d, \"reconstruct_s\": \
       %.6f, \"edges_per_s\": %.1f, \"max_depth\": %d }"
      r.f_hosts r.f_edges r.f_blocked r.f_reconstruct_s
      (float_of_int r.f_edges /. r.f_reconstruct_s)
      r.f_max_depth
  in
  Printf.fprintf oc
    "  \"forensics\": {\n\
    \    \"synthetic\": [\n      %s\n    ],\n\
    \    \"oracle\": { \"hosts\": %d, \"edges\": %d, \"matches\": %b }\n\
    \  }\n"
    (String.concat ",\n      " (List.map forensics_row_json fd.fx_rows))
    fd.fx_oracle_hosts fd.fx_oracle_edges fd.fx_oracle_ok;
  Printf.fprintf oc "}\n";
  close_out oc;
  Printf.printf "(wrote BENCH_pipeline.json)\n"

let pipeline () =
  section_header
    "Pipeline: cooperative scheduler scaling (interleaved community serving)";
  tune_gc_for_population ();
  let benign = sc 6 2 in
  Printf.printf "%6s %9s %10s %10s %12s %14s %12s %10s\n" "hosts" "msgs"
    "create(s)" "run(s)" "hosts/sec" "instrs/sec" "virtual(ms)" "antibody";
  let rows =
    List.map
      (fun n ->
        let r = pipeline_run ~n ~benign () in
        Printf.printf "%6d %9d %10.3f %10.3f %12.1f %14.3e %12.1f %10s\n"
          r.p_hosts r.p_messages r.p_create_s r.p_run_s
          (float_of_int r.p_hosts /. r.p_run_s)
          (float_of_int r.p_instructions /. r.p_run_s)
          r.p_virtual_ms
          (match r.p_first_antibody_ms with
          | Some ms -> Printf.sprintf "%.1f ms" ms
          | None -> "never");
        (* The same population with tracing on: spans cover every served
           message, checkpoint, and the producer's analysis stages. *)
        let ro = pipeline_run ~obs:true ~n ~benign () in
        Printf.printf "%6s %9s %10s %10.3f   (tracing on: %d spans, %.0f \
                       spans/s)\n"
          "" "" "" ro.p_run_s ro.p_spans
          (float_of_int ro.p_spans /. ro.p_run_s);
        (r, ro))
      pipeline_scales
  in
  Printf.printf
    "(one producer per community; the attack stream is spliced mid-stream \
     into host 0's inbox and analyzed while the other hosts keep serving)\n";
  let sd = sharded_bench () in
  let fd = forensics_bench () in
  if !json_output then write_pipeline_json rows sd fd

(* ------------------------------------------------------------------ *)
(* Section 4.2: sampling                                               *)
(* ------------------------------------------------------------------ *)

let sampling () =
  section_header "Section 4.2: heavyweight monitoring of sampled requests";
  let n = sc 800 80 in
  let time_with rate =
    let entry = Apps.Registry.find "apache1" in
    let proc = Osim.Process.load ~aslr:true ~seed:8 (entry.r_compile ()) in
    let server = Osim.Server.create proc in
    ignore (Osim.Server.run server);
    let sampler = Sweeper.Sampling.create ~rate server in
    let reqs = Apps.Registry.workload ~seed:8 "apache1" n in
    Gc.major ();
    let t0 = Unix.gettimeofday () in
    List.iter (fun m -> ignore (Sweeper.Sampling.handle sampler m)) reqs;
    (Unix.gettimeofday () -. t0, sampler)
  in
  let base, _ = time_with 0 in
  Printf.printf "baseline (no sampling): %.3f s for %d requests\n" base n;
  List.iter
    (fun rate ->
      let t, sampler = time_with rate in
      Printf.printf
        "sample 1/%-3d: %.3f s -> %+6.1f%% overhead (%d messages monitored)\n"
        rate t
        ((t /. base -. 1.) *. 100.)
        sampler.Sweeper.Sampling.sampled)
    [ 100; 20; 5; 1 ];
  (* The payoff: a correct-guess hijack that ASLR would miss. *)
  let entry = Apps.Registry.find "apache1" in
  let proc = Osim.Process.load ~aslr:false ~seed:9 (entry.r_compile ()) in
  let server = Osim.Server.create proc in
  ignore (Osim.Server.run server);
  let sampler = Sweeper.Sampling.create ~rate:1 server in
  let exploit =
    Apps.Exploits.apache1_against
      ~system_guess:(Osim.Process.system_addr proc)
      ~reqbuf_addr:(Hashtbl.find proc.Osim.Process.data_symbols "reqbuf")
      ()
  in
  List.iter
    (fun m ->
      match Sweeper.Sampling.handle sampler m with
      | Sweeper.Sampling.Taint_alarm d ->
        Printf.printf "exact-address hijack caught by sampling: %s\n"
          (Sweeper.Detection.to_string d)
      | Sweeper.Sampling.Plain (`Infected _) ->
        Printf.printf "hijack succeeded (sampling missed it)\n"
      | Sweeper.Sampling.Plain _ -> ())
    exploit.Apps.Exploits.x_messages

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablations () =
  section_header "Ablation: COW vs eager (full-copy) checkpoints";
  let entry = Apps.Registry.find "squid" in
  let proc = Osim.Process.load ~seed:3 (entry.r_compile ()) in
  let server = Osim.Server.create proc in
  ignore (Osim.Server.run server);
  List.iter
    (fun m -> ignore (Osim.Server.handle server m))
    (Apps.Registry.workload "squid" 100);
  let time_snapshots eager =
    let n = sc 200 20 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      ignore (Vm.Memory.snapshot ~eager proc.Osim.Process.mem)
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int n *. 1e6
  in
  let cow_us = time_snapshots false in
  let eager_us = time_snapshots true in
  Printf.printf
    "snapshot cost over %d mapped pages: COW %.1f us, full copy %.1f us \
     (%.1fx)\n"
    (Vm.Memory.mapped_pages proc.Osim.Process.mem)
    cow_us eager_us (eager_us /. cow_us);

  section_header "Ablation: antibodies vs polymorphic exploit variants";
  (* Exact signature stops only the original bytes; token signatures stop
     same-shape variants; VSEFs stop them all. *)
  let check_variant key (variant : Apps.Exploits.t) ~with_sig ~with_vsef r =
    let entry = Apps.Registry.find key in
    let proc = Osim.Process.load ~aslr:true ~seed:77 (entry.r_compile ()) in
    let server = Osim.Server.create proc in
    ignore (Osim.Server.run server);
    let ab = r.Sweeper.Orchestrator.a_antibody in
    let ab =
      if with_sig then ab else { ab with Sweeper.Antibody.ab_signature = None }
    in
    let ab =
      if with_vsef then ab else { ab with Sweeper.Antibody.ab_vsefs = [] }
    in
    ignore (Sweeper.Antibody.deploy proc ab);
    let stopped = ref false in
    List.iter
      (fun m ->
        match Osim.Server.handle server m with
        | `Filtered _ -> stopped := true
        | `Crashed _ -> ()
        | `Served _ | `Stopped | `Infected _ -> ()
        | exception Sweeper.Detection.Detected _ -> stopped := true)
      variant.Apps.Exploits.x_messages;
    !stopped
  in
  List.iter
    (fun key ->
      let r, _, _ = attack_and_analyze key in
      let variants =
        Apps.Exploits.variants ~system_guess:0x23456789 ~cmd_ptr:0 key
      in
      let count pred = List.length (List.filter pred variants) in
      let sig_stops =
        count (fun v -> check_variant key v ~with_sig:true ~with_vsef:false r)
      in
      let vsef_stops =
        count (fun v -> check_variant key v ~with_sig:false ~with_vsef:true r)
      in
      Printf.printf
        "%-8s: %d variants; exact signature stops %d; VSEFs stop %d\n" key
        (List.length variants) sig_stops vsef_stops)
    apps;

  section_header "Ablation: proactive protection in the hit-list model";
  List.iter
    (fun rho ->
      let p = { (Epidemic.Si.hitlist ()) with rho; alpha = 0.0001 } in
      Printf.printf "beta=1000 rho=%-10g gamma=10 -> infection ratio %.4f\n"
        rho
        (Epidemic.Si.infection_ratio p ~gamma:10.))
    [ 1.0; Epidemic.Si.rho_aslr ];
  Printf.printf "(without ASLR slowing the worm, no gamma is fast enough)\n"

(* ------------------------------------------------------------------ *)
(* Interpreter microbenchmark: ns/instr under the three monitoring      *)
(* tiers (none / one pc-hook / global hook), the number the paper's     *)
(* "overhead proportional to hooked instructions" claim rests on.       *)
(* ------------------------------------------------------------------ *)

(* A tight 9-instruction loop mixing ALU, word/byte memory traffic and a
   conditional branch — the interpreter's steady-state diet. *)
let vm_loop_cpu () =
  let open Vm.Isa in
  let l = Vm.Layout.create ~aslr:false () in
  let m = Vm.Memory.create () in
  let items =
    [
      Vm.Asm.Label "_start";
      Vm.Asm.Ins (Mov (R4, Imm 0x08100000));
      Vm.Asm.Label "loop";
      Vm.Asm.Ins (Bin (Add, R0, Imm 1));
      Vm.Asm.Ins (Store (R4, 0, R0));
      Vm.Asm.Ins (Load (R2, R4, 0));
      Vm.Asm.Ins (Bin (Add, R2, Reg R0));
      Vm.Asm.Ins (Storeb (R4, 5, R2));
      Vm.Asm.Ins (Loadb (R3, R4, 5));
      Vm.Asm.Ins (Cmp (R0, Imm 0x7FFFFFFF));
      Vm.Asm.Ins (Jcc (Lt, Lbl "loop"));
      Vm.Asm.Ins Halt;
    ]
  in
  let img =
    Vm.Asm.load ~base:l.Vm.Layout.app_code_base [ Vm.Asm.make_unit "bench" items ]
  in
  let l =
    Vm.Layout.set_code_limits l ~app_limit:img.Vm.Asm.limit
      ~lib_limit:l.Vm.Layout.lib_code_base
  in
  let cpu = Vm.Cpu.create ~mem:m ~layout:l ~code:img.Vm.Asm.code in
  cpu.Vm.Cpu.pc <- l.Vm.Layout.app_code_base;
  Vm.Cpu.set_reg cpu Vm.Isa.SP (l.Vm.Layout.stack_top - 16);
  (cpu, img)

let ns_per_instr prepare =
  let fuel = sc 3_000_000 200_000 in
  let best = ref infinity in
  for _ = 1 to sc 7 2 do
    let cpu, img = vm_loop_cpu () in
    prepare cpu img;
    Gc.major ();
    let t0 = Unix.gettimeofday () in
    ignore (Vm.Cpu.run ~fuel cpu);
    let dt = Unix.gettimeofday () -. t0 in
    best := min !best (dt *. 1e9 /. float_of_int cpu.Vm.Cpu.icount)
  done;
  !best

(* Compile the micro loop's basic blocks and engage the superinstruction
   tier — what Process.load does for every real app image. *)
let install_loop_blocks cpu (img : Vm.Asm.image) =
  Vm.Block_compile.install cpu
    (Static_an.Cfg.block_bounds (Static_an.Cfg.build img.Vm.Asm.code))

(* Tier-accounting audit: run the micro loop under [prepare]'s
   configuration with blocks compiled and check that the three retirement
   counters partition the executed stream exactly —
   block + fast + slow == icount. (The loop never rolls back, so icount
   is an independent count of instructions executed.) Violations are a
   correctness bug in the tier dispatch, not a measurement artifact, so
   fail the whole bench loudly. *)
let tier_counts name prepare =
  let cpu, img = vm_loop_cpu () in
  install_loop_blocks cpu img;
  prepare cpu img;
  ignore (Vm.Cpu.run ~fuel:(sc 200_000 20_000) cpu);
  let b = cpu.Vm.Cpu.block_retired
  and f = cpu.Vm.Cpu.fast_retired
  and s = cpu.Vm.Cpu.slow_retired
  and n = cpu.Vm.Cpu.icount in
  if b + f + s <> n then
    failwith
      (Printf.sprintf
         "tier counters leak under %s: block %d + fast %d + slow %d <> \
          executed %d"
         name b f s n);
  (name, b, f, s, n)

let micro_vm () =
  section_header "Interpreter tiers: ns/instr vs installed instrumentation";
  let uninstr = ns_per_instr (fun _ _ -> ()) in
  (* Tier 3: the same loop with its basic blocks compiled into fused
     closures — one bounds check and one hook-mask/fuel test per block
     instead of per instruction. *)
  let block_compiled = ns_per_instr install_loop_blocks in
  (* One targeted hook: the hooked pc (1 of the 9 in the loop) pays the
     instrumented path, every other instruction stays on the fast path. *)
  let one_pc =
    ns_per_instr (fun cpu img ->
        ignore
          (Vm.Cpu.add_pc_hook cpu ~pc:(img.Vm.Asm.base + 8) (fun _ -> ())))
  in
  (* A global pre-hook (the shape of a whole-execution taint monitor)
     forces every instruction through the effect-record path. *)
  let global =
    ns_per_instr (fun cpu _ ->
        let writes = ref 0 in
        ignore
          (Vm.Cpu.add_post_hook cpu (fun eff ->
               writes := !writes + List.length eff.Vm.Event.e_mem_writes)))
  in
  (* Observability overhead: with the tracer enabled nothing on the fast
     path emits spans, so ns/instr must stay within noise of the
     uninstrumented tier. The flight recorder is a global post-hook, so it
     pays the instrumented path like any whole-execution monitor. *)
  let obs_on = ns_per_instr (fun _ _ -> Obs.Trace.enable ()) in
  Obs.Trace.disable ();
  Obs.Trace.clear ();
  let flight = ns_per_instr (fun cpu _ -> ignore (Obs.Recorder.attach cpu)) in
  (* Checkpoint cost in pages actually copied (COW faults / checkpoint). *)
  let _, cks, cow, _, _ =
    run_workload
      ~config:{ Osim.Server.checkpoint_interval_ms = 40; keep_checkpoints = 20 }
      "squid" (sc 300 60) 11
  in
  let pages_per_ck =
    if cks = 0 then 0.0 else float_of_int cow /. float_of_int cks
  in
  (* Audit the tier accounting in each instrumented configuration the
     acceptance bar names: hooked, observability on, flight recorder. The
     taint-pruned configuration is audited per app in [static_bench]. *)
  let tiers =
    [
      tier_counts "hooked" (fun cpu img ->
          ignore
            (Vm.Cpu.add_pc_hook cpu ~pc:(img.Vm.Asm.base + 8) (fun _ -> ())));
      tier_counts "obs_on" (fun _ _ -> Obs.Trace.enable ());
      tier_counts "flight_recorder" (fun cpu _ ->
          ignore (Obs.Recorder.attach cpu));
    ]
  in
  Obs.Trace.disable ();
  Obs.Trace.clear ();
  Printf.printf "uninstrumented        : %8.1f ns/instr\n" uninstr;
  Printf.printf "block-compiled (tier 3): %7.1f ns/instr (%.1fx vs \
                 per-instruction)\n"
    block_compiled
    (uninstr /. block_compiled);
  Printf.printf "1 pc-hook (1/9 pcs)   : %8.1f ns/instr (%+.1f%%)\n" one_pc
    ((one_pc /. uninstr -. 1.) *. 100.);
  Printf.printf "global taint-style hook: %8.1f ns/instr (%.1fx)\n" global
    (global /. uninstr);
  Printf.printf "tracer enabled        : %8.1f ns/instr (%+.1f%% vs \
                 uninstrumented)\n"
    obs_on
    ((obs_on /. uninstr -. 1.) *. 100.);
  Printf.printf "flight recorder on    : %8.1f ns/instr (%.1fx)\n" flight
    (flight /. uninstr);
  Printf.printf "pages copied/checkpoint: %7.1f (over %d checkpoints)\n"
    pages_per_ck cks;
  List.iter
    (fun (name, b, f, s, n) ->
      Printf.printf
        "tiers under %-15s: block %d + fast %d + slow %d == executed %d\n"
        name b f s n)
    tiers;
  (uninstr, block_compiled, one_pc, global, obs_on, flight, pages_per_ck, cks,
   tiers)

(* ------------------------------------------------------------------ *)
(* Interval abstract interpretation: analysis cost and proven-safe     *)
(* coverage per app, plus the bounds-proof elision win on the micro    *)
(* loop (4 of its 9 instructions are proven-safe accesses).            *)
(* ------------------------------------------------------------------ *)

(* Like [install_loop_blocks], plus bounds-proof elision from a fresh
   interval analysis of the loop image — what Process.load does for
   every real app. *)
let install_loop_blocks_elided cpu (img : Vm.Asm.image) =
  let ai =
    Static_an.Absint.analyze ~layout:cpu.Vm.Cpu.layout img.Vm.Asm.code
  in
  Vm.Block_compile.install
    ~safe_of:(Static_an.Absint.safe_range ai)
    cpu
    (Static_an.Cfg.block_bounds (Static_an.Cfg.build img.Vm.Asm.code))

type absint_row = {
  ai_app : string;
  ai_ms : float;
  ai_instructions : int;
  ai_accesses : int;
  ai_proven : int;
  ai_possible : int;
  ai_oob : int;
  ai_unreachable : int;
  ai_proven_pct : float;
}

let micro_absint () =
  section_header
    "Interval abstract interpretation: proven-safe coverage and elision";
  let rows =
    List.map
      (fun app ->
        let entry = Apps.Registry.find app in
        let proc = Osim.Process.load ~seed:(bseed 3) (entry.r_compile ()) in
        let ai = proc.Osim.Process.absint in
        {
          ai_app = app;
          ai_ms = Static_an.Absint.analysis_ms ai;
          ai_instructions = Static_an.Absint.instructions ai;
          ai_accesses = Static_an.Absint.accesses ai;
          ai_proven = Static_an.Absint.proven ai;
          ai_possible = Static_an.Absint.possible ai;
          ai_oob = Static_an.Absint.oob ai;
          ai_unreachable = Static_an.Absint.unreachable ai;
          ai_proven_pct = 100. *. Static_an.Absint.proven_pct ai;
        })
      apps
  in
  Printf.printf "%-8s %7s %9s %7s %9s %5s %8s %10s %8s\n" "app" "instrs"
    "accesses" "proven" "possible" "oob" "unreach" "proven(%)" "ms";
  List.iter
    (fun r ->
      Printf.printf "%-8s %7d %9d %7d %9d %5d %8d %10.1f %8.3f\n" r.ai_app
        r.ai_instructions r.ai_accesses r.ai_proven r.ai_possible r.ai_oob
        r.ai_unreachable r.ai_proven_pct r.ai_ms)
    rows;
  let guarded = ns_per_instr install_loop_blocks in
  let elided = ns_per_instr install_loop_blocks_elided in
  (* Soundness audit: the elided run must never trip its residual range
     checks — the micro loop is hijack-free, so a trip would mean a
     wrong proof. *)
  let cpu, img = vm_loop_cpu () in
  install_loop_blocks_elided cpu img;
  ignore (Vm.Cpu.run ~fuel:(sc 200_000 20_000) cpu);
  if cpu.Vm.Cpu.elision_trips <> 0 then
    failwith
      (Printf.sprintf "bounds-proof elision tripped %d times on the micro \
                       loop: the static proof is wrong"
         cpu.Vm.Cpu.elision_trips);
  Printf.printf
    "micro loop, block tier: guarded %.1f ns/instr -> elided %.1f ns/instr \
     (%.2fx, 0 tripwires)\n"
    guarded elided (guarded /. elided);
  Printf.printf
    "(proven(%%) = reachable accesses proven safe; elided blocks replace \
     the multi-range memory guard with two compares against the proven \
     region's constant bounds)\n";
  (rows, guarded, elided)

(* ------------------------------------------------------------------ *)
(* Taint & slicing engines: ns/instr of the heavyweight replays.       *)
(* The workload is what the analyses actually chew through: a replay   *)
(* that recv's a message and then loops copy/ALU traffic over the      *)
(* tainted buffer.                                                     *)
(* ------------------------------------------------------------------ *)

let taint_bench_proc reps =
  let src =
    Printf.sprintf
      {|
      char buf[128];
      int sink;
      int main() {
        int n = _recv(buf, 128);
        int r = 0;
        int acc = 0;
        int i = 0;
        while (r < %d) {
          i = 0;
          while (i < 64) {
            acc = acc + buf[i];
            buf[i + 64] = buf[i];
            i = i + 1;
          }
          r = r + 1;
        }
        sink = acc;
        return 0;
      }
      |}
      reps
  in
  let proc =
    Osim.Process.load ~aslr:true ~seed:(bseed 11)
      (Minic.Driver.compile_app ~name:"taintbench" src)
  in
  ignore (Osim.Process.run proc);
  ignore (Osim.Process.send_message proc (String.make 96 'Z'));
  proc

(* Best-of-[trials] ns/instr of one replay analysis; each trial gets a
   fresh process (a replay consumes it). *)
let replay_ns_per_instr trials mk run instrs_of =
  let best = ref infinity in
  let instrs = ref 0 in
  for _ = 1 to trials do
    let proc = mk () in
    Gc.major ();
    let t0 = Unix.gettimeofday () in
    let r = run proc in
    let dt = Unix.gettimeofday () -. t0 in
    instrs := instrs_of r;
    if !instrs > 0 then best := min !best (dt *. 1e9 /. float_of_int !instrs)
  done;
  (!best, !instrs)

let micro_taint () =
  section_header "Analysis engines: ns/instr of the heavyweight replays";
  let reps = sc 2000 20 in
  let trials = sc 5 2 in
  let mk () = taint_bench_proc reps in
  let fused, n_instr =
    replay_ns_per_instr trials mk Sweeper.Taint.run (fun r ->
        r.Sweeper.Taint.t_instructions)
  in
  let oracle, _ =
    replay_ns_per_instr trials mk Sweeper.Taint.Oracle.run (fun r ->
        r.Sweeper.Taint.t_instructions)
  in
  let slice, _ =
    replay_ns_per_instr trials mk Sweeper.Slice.run (fun r ->
        r.Sweeper.Slice.sl_instructions)
  in
  (* Cross-check: both taint engines must agree on the replay. *)
  let r1 = Sweeper.Taint.run (mk ()) in
  let r2 = Sweeper.Taint.Oracle.run (mk ()) in
  let agree =
    Sweeper.Taint.verdict_to_string r1.Sweeper.Taint.t_verdict
    = Sweeper.Taint.verdict_to_string r2.Sweeper.Taint.t_verdict
    && r1.Sweeper.Taint.t_prop_pcs = r2.Sweeper.Taint.t_prop_pcs
  in
  Printf.printf "replay length: %d instructions (engines agree: %b)\n" n_instr
    agree;
  Printf.printf "taint, fused shadow-page engine : %8.1f ns/instr\n" fused;
  Printf.printf "taint, per-byte oracle engine   : %8.1f ns/instr (%.1fx)\n"
    oracle (oracle /. fused);
  Printf.printf "backward slice (paged last-writer): %6.1f ns/instr\n" slice;
  (fused, oracle, slice)

(* ------------------------------------------------------------------ *)
(* Static prefilter: hook points pruned by Static_an.Staint and what    *)
(* that buys the taint replay. Two reductions are reported per app:     *)
(*   - static: 1 - |K|/|program| over decoded pcs (hook points that     *)
(*     never need installing);                                          *)
(*   - executed: the fraction of dynamically replayed instructions that *)
(*     retire on the uninstrumented fast path when only K is hooked     *)
(*     (the baseline global-hook replay instruments every one).         *)
(* The replay is the app's own exploit, and the pruned runs must agree  *)
(* with the unpruned run byte-for-byte.                                 *)
(* ------------------------------------------------------------------ *)

type static_row = {
  s_app : string;
  s_instructions : int;  (** decoded pcs in the image *)
  s_prop : int;          (** |S|, may-propagate pcs *)
  s_hook : int;          (** |K|, must-hook pcs *)
  s_static_pct : float;  (** 1 - |K|/|program|, as a percentage *)
  s_exec_pct : float;    (** replayed instrs retiring uninstrumented, % *)
  s_ms : float;          (** analysis time *)
  s_base_ns : float;     (** global-hook fused taint replay, ns/instr *)
  s_pruned_ns : float;   (** statically pruned fused replay, ns/instr *)
  s_tiers : int * int * int * int;
      (** (block, fast, slow, executed) retirement deltas of the per-pc
          pruned replay — the taint-pruned tier-accounting audit *)
}

(* Load the app and queue benign traffic followed by its exploit stream;
   the taint replay then consumes all of it up to the fault. The benign
   prefix makes the replay long enough (tens of thousands of
   instructions instead of a few thousand) that per-replay setup —
   building the tracker, validating the static result against the code —
   amortizes out of the ns/instr numbers, as it does in the epoch-sized
   replays the defense actually runs. A fixed seed keeps every load of
   one app at the same layout, so one static analysis serves all of
   them. *)
let exploit_replay_proc key =
  let entry = Apps.Registry.find key in
  let proc = Osim.Process.load ~aslr:true ~seed:(bseed 13) (entry.r_compile ()) in
  ignore (Osim.Process.run proc);
  List.iter
    (fun m -> ignore (Osim.Process.send_message proc m))
    (Apps.Registry.workload ~seed:(bseed 5) key (sc 150 6));
  let exploit = Apps.Registry.exploit ~system_guess:0x12345678 ~cmd_ptr:0 key in
  List.iter
    (fun m -> ignore (Osim.Process.send_message proc m))
    exploit.Apps.Exploits.x_messages;
  proc

let static_bench key =
  let trials = sc 9 2 in
  let mk () = exploit_replay_proc key in
  let sa =
    Static_an.Staint.analyze (mk ()).Osim.Process.cpu.Vm.Cpu.code
  in
  (* A/B trials are interleaved — base, pruned, base, pruned … — rather
     than two sequential best-of blocks. Back-to-back blocks let
     heap/allocator drift land entirely on whichever variant runs second
     (the old sequential ordering is how the pruned replay once measured
     "slower" than global on apache2 despite doing strictly less work per
     instruction); alternating makes both variants sample the same drift,
     so best-of picks comparable bests. *)
  let run_base = Sweeper.Taint.run ?static:None in
  let run_pruned_fused = Sweeper.Taint.run ~static:sa in
  let time_one run =
    let proc = mk () in
    Gc.major ();
    let t0 = Unix.gettimeofday () in
    let r = run proc in
    let dt = Unix.gettimeofday () -. t0 in
    let n = r.Sweeper.Taint.t_instructions in
    if n > 0 then Some (dt *. 1e9 /. float_of_int n) else None
  in
  let base_best = ref infinity and pruned_best = ref infinity in
  let note best = function Some ns -> best := min !best ns | None -> () in
  for _ = 1 to trials do
    note base_best (time_one run_base);
    note pruned_best (time_one run_pruned_fused)
  done;
  let base_ns = !base_best and pruned_ns = !pruned_best in
  (* Execution-weighted instrumentation: hook only K (per-pc hooks) and
     read the interpreter's own retirement counters. Unhooked blocks run
     as compiled superinstructions, hooked ones per-instruction; the
     uninstrumented share is everything that avoided the effect-record
     path. The same deltas are the taint-pruned tier audit:
     block + fast + slow must equal the instructions the replay
     executed. *)
  let proc = mk () in
  let cpu = proc.Osim.Process.cpu in
  let b0 = cpu.Vm.Cpu.block_retired
  and f0 = cpu.Vm.Cpu.fast_retired
  and s0 = cpu.Vm.Cpu.slow_retired
  and i0 = cpu.Vm.Cpu.icount in
  let per_pc = Sweeper.Taint.run_pruned ~static:sa proc in
  let block = cpu.Vm.Cpu.block_retired - b0
  and fast = cpu.Vm.Cpu.fast_retired - f0
  and slow = cpu.Vm.Cpu.slow_retired - s0
  and executed = cpu.Vm.Cpu.icount - i0 in
  if block + fast + slow <> executed then
    failwith
      (Printf.sprintf
         "%s: tier counters leak under taint-pruned replay: %d + %d + %d <> \
          %d"
         key block fast slow executed);
  let exec_pct =
    if executed = 0 then 0.
    else 100. *. float_of_int (block + fast) /. float_of_int executed
  in
  (* Pruning must be invisible: same verdict, same propagation pcs. *)
  let summarize (r : Sweeper.Taint.result) =
    ( Sweeper.Taint.verdict_to_string r.Sweeper.Taint.t_verdict,
      r.Sweeper.Taint.t_prop_pcs )
  in
  let unpruned = Sweeper.Taint.run (mk ()) in
  let pruned = Sweeper.Taint.run ~static:sa (mk ()) in
  if summarize unpruned <> summarize pruned
     || summarize unpruned <> summarize per_pc
  then failwith (key ^ ": statically pruned taint replay diverged");
  let total = Static_an.Staint.total sa in
  {
    s_app = key;
    s_instructions = total;
    s_prop = Static_an.Staint.prop_count sa;
    s_hook = Static_an.Staint.hook_count sa;
    s_static_pct = 100. *. Static_an.Staint.reduction sa;
    s_exec_pct = exec_pct;
    s_ms = Static_an.Staint.analysis_ms sa;
    s_base_ns = base_ns;
    s_pruned_ns = pruned_ns;
    s_tiers = (block, fast, slow, executed);
  }

let micro_static () =
  section_header
    "Static prefilter: taint hook points pruned and replay impact";
  Printf.printf "%-8s %7s %7s %7s %11s %11s %9s %10s %11s %9s\n" "app" "pcs"
    "|S|" "|K|" "static(%)" "exec(%)" "ms" "base ns/i" "pruned ns/i"
    "delta";
  let rows = List.map static_bench apps in
  List.iter
    (fun r ->
      Printf.printf
        "%-8s %7d %7d %7d %11.1f %11.1f %9.3f %10.1f %11.1f %+9.2f\n" r.s_app
        r.s_instructions r.s_prop r.s_hook r.s_static_pct r.s_exec_pct r.s_ms
        r.s_base_ns r.s_pruned_ns
        (r.s_pruned_ns -. r.s_base_ns))
    rows;
  Printf.printf
    "(static %% = decoded pcs provably needing no taint hook; exec %% = \
     replayed instructions retiring uninstrumented — block tier or fast \
     path — when only the must-hook set K is instrumented; delta = pruned \
     minus global ns/instr, negative is a pruning win; pruned replays are \
     verified byte-identical to the global-hook replay)\n";
  rows

(* Per-stage Table 3 wall-clock, collected for the JSON dump. *)
let table3_stage_rows () =
  List.map
    (fun key ->
      let r, _, _ = attack_and_analyze key in
      (key, r))
    apps

let json_escape_stage name =
  String.map (fun c -> if c = ' ' || c = '/' then '_' else Char.lowercase_ascii c)
    name

(* BENCH_vm.json accumulates results from several producers, so a `bench
   micro --json` run must only replace the keys it recomputes: read the
   existing object, substitute refreshed keys in place, append new ones.
   (The old writer emitted a fresh file and silently dropped everything
   another section or tool had recorded.) *)
let merge_json_file file (fresh : (string * Obs.Json.t) list) =
  let existing =
    if Sys.file_exists file then begin
      let ic = open_in_bin file in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Obs.Json.parse s with Ok (Obs.Json.Obj kvs) -> kvs | _ -> []
    end
    else []
  in
  let merged =
    List.map
      (fun (k, v) ->
        match List.assoc_opt k fresh with Some v' -> (k, v') | None -> (k, v))
      existing
    @ List.filter (fun (k, _) -> not (List.mem_assoc k existing)) fresh
  in
  let oc = open_out file in
  output_string oc (Obs.Json.to_string (Obs.Json.Obj merged));
  output_char oc '\n';
  close_out oc

let write_bench_json ~uninstr ~block_compiled ~one_pc ~global ~obs_on ~flight
    ~pages_per_ck ~cks ~tiers ~taint_fused ~taint_oracle ~slice_ns
    ~static_rows ~absint_rows ~absint_guarded ~absint_elided ~table3 =
  let f x = Obs.Json.Float x in
  let tier_obj (b, fa, sl, n) =
    Obs.Json.Obj
      [
        ("block", Obs.Json.Int b);
        ("fast", Obs.Json.Int fa);
        ("slow", Obs.Json.Int sl);
        ("executed", Obs.Json.Int n);
      ]
  in
  let fresh =
    [
      ("ns_per_instr_uninstrumented", f uninstr);
      ("ns_per_instr_block_compiled", f block_compiled);
      ("block_compiled_speedup_x", f (uninstr /. block_compiled));
      ("ns_per_instr_one_pc_hook", f one_pc);
      ("ns_per_instr_global_taint_hook", f global);
      ("one_pc_hook_overhead_pct", f ((one_pc /. uninstr -. 1.) *. 100.));
      ("global_hook_slowdown_x", f (global /. uninstr));
      ("ns_per_instr_obs_enabled", f obs_on);
      ("obs_enabled_overhead_pct", f ((obs_on /. uninstr -. 1.) *. 100.));
      ("ns_per_instr_flight_recorder", f flight);
      ("flight_recorder_slowdown_x", f (flight /. uninstr));
      ("ns_per_instr_taint_analysis", f taint_fused);
      ("ns_per_instr_taint_oracle", f taint_oracle);
      ("taint_speedup_x", f (taint_oracle /. taint_fused));
      ("ns_per_instr_slice_analysis", f slice_ns);
      ("pages_copied_per_checkpoint", f pages_per_ck);
      ("checkpoints", Obs.Json.Int cks);
      ( "tier_counters",
        Obs.Json.Obj
          (List.map (fun (name, b, fa, sl, n) -> (name, tier_obj (b, fa, sl, n)))
             tiers
          @ List.map
              (fun r -> ("taint_pruned_" ^ r.s_app, tier_obj r.s_tiers))
              static_rows) );
      ( "static_prefilter",
        Obs.Json.Obj
          (List.map
             (fun r ->
               ( r.s_app,
                 Obs.Json.Obj
                   [
                     ("instructions", Obs.Json.Int r.s_instructions);
                     ("taint_prop_pcs", Obs.Json.Int r.s_prop);
                     ("taint_hook_pcs", Obs.Json.Int r.s_hook);
                     ("static_hook_reduction_pct", f r.s_static_pct);
                     ("exec_uninstrumented_pct", f r.s_exec_pct);
                     ("analysis_ms", f r.s_ms);
                     ("ns_per_instr_taint_global", f r.s_base_ns);
                     ("ns_per_instr_taint_pruned", f r.s_pruned_ns);
                     ( "taint_pruned_delta_ns_per_instr",
                       f (r.s_pruned_ns -. r.s_base_ns) );
                   ] ))
             static_rows) );
      ( "absint",
        Obs.Json.Obj
          [
            ("ns_per_instr_block_guarded", f absint_guarded);
            ("ns_per_instr_block_elided", f absint_elided);
            ("elision_speedup_x", f (absint_guarded /. absint_elided));
            ( "apps",
              Obs.Json.Obj
                (List.map
                   (fun r ->
                     ( r.ai_app,
                       Obs.Json.Obj
                         [
                           ("analysis_ms", f r.ai_ms);
                           ("instructions", Obs.Json.Int r.ai_instructions);
                           ("accesses", Obs.Json.Int r.ai_accesses);
                           ("proven", Obs.Json.Int r.ai_proven);
                           ("possible", Obs.Json.Int r.ai_possible);
                           ("oob", Obs.Json.Int r.ai_oob);
                           ("unreachable", Obs.Json.Int r.ai_unreachable);
                           ("proven_pct", f r.ai_proven_pct);
                         ] ))
                   absint_rows) );
          ] );
      ( "table3_stage_ms",
        Obs.Json.Obj
          (List.map
             (fun (key, (r : Sweeper.Orchestrator.report)) ->
               ( key,
                 Obs.Json.Obj
                   (List.map
                      (fun (st : Sweeper.Orchestrator.stage_timing) ->
                        (json_escape_stage st.st_name, f st.st_wall_ms))
                      r.Sweeper.Orchestrator.a_timings
                   @ [
                       ( "time_to_first_vsef",
                         f r.Sweeper.Orchestrator.a_time_to_first_vsef_ms );
                       ("total", f r.Sweeper.Orchestrator.a_total_ms);
                     ]) ))
             table3) );
    ]
  in
  merge_json_file "BENCH_vm.json" fresh;
  Printf.printf "(wrote BENCH_vm.json)\n"

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the primitives                          *)
(* ------------------------------------------------------------------ *)

let micro () =
  let ( uninstr,
        block_compiled,
        one_pc,
        global,
        obs_on,
        flight,
        pages_per_ck,
        cks,
        tiers ) =
    micro_vm ()
  in
  let taint_fused, taint_oracle, slice_ns = micro_taint () in
  let static_rows = micro_static () in
  let absint_rows, absint_guarded, absint_elided = micro_absint () in
  if !json_output then begin
    let table3 = table3_stage_rows () in
    write_bench_json ~uninstr ~block_compiled ~one_pc ~global ~obs_on ~flight
      ~pages_per_ck ~cks ~tiers ~taint_fused ~taint_oracle ~slice_ns
      ~static_rows ~absint_rows ~absint_guarded ~absint_elided ~table3
  end;
  section_header "Microbenchmarks (Bechamel)";
  let open Bechamel in
  let entry = Apps.Registry.find "squid" in
  let proc = Osim.Process.load ~seed:(bseed 2) (entry.r_compile ()) in
  let server = Osim.Server.create proc in
  ignore (Osim.Server.run server);
  List.iter
    (fun m -> ignore (Osim.Server.handle server m))
    (Apps.Registry.workload ~seed:(bseed 7) "squid" 50);
  let snapshot_test =
    Test.make ~name:"memory-cow-snapshot"
      (Staged.stage (fun () -> ignore (Vm.Memory.snapshot proc.Osim.Process.mem)))
  in
  let checkpoint_test =
    Test.make ~name:"process-checkpoint"
      (Staged.stage (fun () -> ignore (Osim.Checkpoint.take proc)))
  in
  let sig_exact = Sweeper.Signature.exact (String.make 256 'x') in
  let msg = String.make 256 'y' in
  let signature_test =
    Test.make ~name:"signature-match-exact"
      (Staged.stage (fun () -> ignore (Sweeper.Signature.matches sig_exact msg)))
  in
  let sig_tok =
    Sweeper.Signature.tokens_of_variants
      [ "GET /a HTTP\nReferer: x\n"; "GET /b HTTP\nReferer: y\n" ]
  in
  let token_test =
    Test.make ~name:"signature-match-tokens"
      (Staged.stage (fun () ->
           ignore (Sweeper.Signature.matches sig_tok "GET /c HTTP\nReferer: z\n")))
  in
  (* Bechamel's pipeline: measure monotonic time, fit ns/run with OLS. *)
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:(sc 2000 200) ~quota:(Time.second (sc 0.5 0.1)) ()
  in
  let tests =
    Test.make_grouped ~name:"sweeper"
      [ snapshot_test; checkpoint_test; signature_test; token_test ]
  in
  let raw = Benchmark.all cfg instances tests in
  let results =
    Analyze.merge ols instances
      (List.map (fun i -> Analyze.all ols i raw) instances)
  in
  Hashtbl.iter
    (fun measure tbl ->
      Hashtbl.iter
        (fun test result ->
          match Analyze.OLS.estimates result with
          | Some (est :: _) ->
            Printf.printf "%-40s %.1f ns/op (%s)\n" test est measure
          | _ -> ())
        tbl)
    results

(* ------------------------------------------------------------------ *)

let all_sections =
  [
    ("table1", table1);
    ("table2", table2);
    ("table3", table3);
    ("fig4", fig4);
    ("fig5", fig5);
    ("vsef", vsef_overhead);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("hitlist", hitlist_response);
    ("community", community);
    ("pipeline", pipeline);
    ("sharded", fun () -> ignore (sharded_bench () : sharded_data));
    ("forensics", fun () -> ignore (forensics_bench () : forensics_data));
    ("sampling", sampling);
    ("ablations", ablations);
    ("static", fun () -> ignore (micro_static () : static_row list));
    ( "absint",
      fun () ->
        ignore (micro_absint () : absint_row list * float * float) );
    ("micro", micro);
  ]

let () =
  let rec parse acc = function
    | [] -> List.rev acc
    | "--json" :: rest ->
      json_output := true;
      parse acc rest
    | ("smoke" | "--smoke") :: rest ->
      smoke := true;
      parse acc rest
    | "--seed" :: n :: rest ->
      (match int_of_string_opt n with
      | Some n -> bench_seed := n
      | None -> Printf.eprintf "--seed: not an integer: %s\n" n);
      parse acc rest
    | a :: rest when String.length a > 7 && String.sub a 0 7 = "--seed=" ->
      (match int_of_string_opt (String.sub a 7 (String.length a - 7)) with
      | Some n -> bench_seed := n
      | None -> Printf.eprintf "--seed: not an integer: %s\n" a);
      parse acc rest
    | a :: rest -> parse (a :: acc) rest
  in
  let args = parse [] (List.tl (Array.to_list Sys.argv)) in
  let requested =
    match args with
    | _ :: _ as names -> names
    | [] -> List.map fst all_sections
  in
  List.iter
    (fun name ->
      match List.assoc_opt name all_sections with
      | Some f -> f ()
      | None ->
        Printf.eprintf "unknown section %s (available: %s)\n" name
          (String.concat " " (List.map fst all_sections)))
    requested
