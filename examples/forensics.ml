(* Forensics walkthrough: the Squid heap overflow of the paper's Figure 2,
   analyzed step by step with each of Sweeper's four analysis tools run
   manually — the long-form version of what the orchestrator automates.

   Run with: dune exec examples/forensics.exe *)

module Int_set = Set.Make (Int)

let () =
  print_endline "== Forensics: CVE-2002-0068 (Squid ftpBuildTitleUrl) ==";
  let app = Apps.Registry.find "squid" in
  let proc = Osim.Process.load ~aslr:true ~seed:7 (app.r_compile ()) in
  let server = Osim.Server.create proc in
  ignore (Osim.Server.run server);
  List.iter
    (fun m -> ignore (Osim.Server.handle server m))
    (Apps.Registry.workload "squid" 12);

  (* The attack: an ftp URL whose user part triples under escaping. *)
  let exploit = Apps.Registry.exploit "squid" in
  let fault =
    List.fold_left
      (fun acc m ->
        match Osim.Server.handle server m with
        | `Crashed (_, f) -> Some f
        | _ -> acc)
      None exploit.Apps.Exploits.x_messages
  in
  let fault = Option.get fault in
  Printf.printf "\nlightweight monitor tripped: %s at %s\n"
    (Vm.Event.fault_to_string fault)
    (Osim.Process.describe_addr proc proc.Osim.Process.cpu.Vm.Cpu.pc);

  (* Step 1 — memory-state analysis (milliseconds, no re-execution). *)
  print_endline "\n[1] memory-state analysis (core dump)";
  let cd = Sweeper.Coredump.analyze proc fault in
  Printf.printf "    %s\n" cd.Sweeper.Coredump.c_summary;
  (match cd.Sweeper.Coredump.c_vsef with
  | Some v ->
    Printf.printf "    initial VSEF: %s\n"
      (Sweeper.Vsef.check_to_string
         ~describe:(Sweeper.Report.describe_loc proc) v.Sweeper.Vsef.v_check)
  | None -> ());
  (* Show the trampled heap the walk found. *)
  List.iter
    (fun (c : Vm.Alloc.chunk) ->
      match c.c_state with
      | Vm.Alloc.Chunk_corrupt magic ->
        Printf.printf "    corrupt chunk header at 0x%x (magic 0x%x)\n" c.c_ptr magic
      | _ -> ())
    (Vm.Alloc.chunks proc.Osim.Process.mem proc.Osim.Process.layout);

  (* Prepare replay: roll back to a checkpoint that predates the attacking
     message (a later one could sit mid-exploit). The replay driver picks
     the rollback point and owns the rearm mechanics — rollback, log
     replay mode, sandboxing. *)
  let upto = Osim.Netlog.cursor proc.Osim.Process.net in
  let ck, _ = Sweeper.Stage.Replay.rollback_point server ~msg_index:(upto - 1) in
  let rearm () =
    Sweeper.Stage.Replay.arm proc ck ~upto ~skip:Osim.Netlog.Int_set.empty
  in

  (* Step 2 — memory-bug detection during sandboxed replay. *)
  print_endline "\n[2] dynamic memory-bug detection (rollback + replay)";
  rearm ();
  let mb = Sweeper.Membug.run proc in
  List.iter
    (fun f ->
      Printf.printf "    %s\n"
        (Sweeper.Membug.finding_to_string
           ~describe:(Osim.Process.describe_addr proc) f))
    mb.Sweeper.Membug.m_findings;
  Printf.printf "    (%d instructions monitored)\n" mb.Sweeper.Membug.m_instructions;

  (* Step 3 — dynamic taint analysis: which input did this? *)
  print_endline "\n[3] dynamic taint analysis";
  rearm ();
  let ta = Sweeper.Taint.run proc in
  Printf.printf "    %s\n" (Sweeper.Taint.verdict_to_string ta.Sweeper.Taint.t_verdict);
  (match Sweeper.Taint.verdict_msgs ta.Sweeper.Taint.t_verdict with
  | [ id ] ->
    let m = (Osim.Netlog.message proc.Osim.Process.net id).m_payload in
    Printf.printf "    responsible request (%d bytes): %s...\n" (String.length m)
      (String.escaped (String.sub m 0 (min 48 (String.length m))))
  | _ -> ());

  (* Step 4 — dynamic backward slicing: the sanity check. *)
  print_endline "\n[4] dynamic backward slicing";
  rearm ();
  let sl = Sweeper.Slice.run proc in
  let s = sl.Sweeper.Slice.sl_summary in
  Printf.printf "    window: %d dynamic instructions; slice: %d (%d static sites)\n"
    s.Sweeper.Slice.s_nodes s.Sweeper.Slice.s_slice_size
    (Int_set.cardinal s.Sweeper.Slice.s_pcs);
  let blamed =
    List.map Sweeper.Membug.finding_pc mb.Sweeper.Membug.m_findings
  in
  List.iter
    (fun pc ->
      Printf.printf "    membug's %s is %s the slice\n"
        (Osim.Process.describe_addr proc pc)
        (if Sweeper.Slice.verifies s pc then "inside" else "OUTSIDE (contradiction!)"))
    blamed;

  (* Clean up: recover the server. *)
  let skip = Sweeper.Taint.verdict_msgs ta.Sweeper.Taint.t_verdict in
  let outcome = Sweeper.Recovery.recover server ck ~skip in
  Printf.printf "\nrecovered: replayed %d messages, dropped %d; server %s\n"
    outcome.Sweeper.Recovery.rec_replayed outcome.Sweeper.Recovery.rec_skipped
    (match outcome.Sweeper.Recovery.rec_status with
    | `Recovered -> "live"
    | `Crashed_again _ -> "crashed again"
    | `Stopped -> "stopped")
